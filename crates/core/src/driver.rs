//! End-to-end compilation driver: orchestrate every basic block, allocate
//! registers, and link per-tile instruction streams into a loadable
//! [`MachineProgram`].
//!
//! Control flow is *orchestrated globally*: every tile (processor **and**
//! switch) holds code for every basic block and follows the program's control
//! flow in lock-step order (not lock-step time). For a conditional branch, the
//! tile that computes the condition broadcasts it over the static network on a
//! dimension-ordered multicast tree; every other processor branches on the
//! received word (`bnez PortIn`) and every switch latches it into a register
//! and branches on that (paper §3.1's switch is a sequencer with its own
//! branches).

use crate::blockcache::{self, BlockBundle, BlockCache, KeyContext};
use crate::codegen::{self, TileBlockCode};
use crate::layout::{initial_memory_images, DataLayout};
use crate::options::{CompilerOptions, PlacementAlgorithm};
use crate::partition;
use crate::provenance::{self, ProvRecord, ProvenanceMap, NO_PROV};
use crate::regalloc;
use crate::schedule::{self, broadcast_routes};
use crate::taskgraph::TaskGraph;
use raw_ir::interp::ExecResult;
use raw_ir::{Block, Imm, Program, Terminator};
use raw_machine::asm::{ProcAsm, SwitchAsm};
use raw_machine::trace::EventSink;
use raw_machine::{Machine, MachineConfig, MachineProgram, RunReport, SimError, TileCode, TileId};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The machine's tile count must be a power of two (low-order interleaving).
    TileCountNotPowerOfTwo {
        /// The offending tile count.
        n_tiles: u32,
    },
    /// With a faulty mask, the number of *live* tiles must be a nonzero power
    /// of two (see [`MachineConfig::mask_to_pow2`] for padding a dead set).
    LiveTileCountNotPowerOfTwo {
        /// The offending live-tile count.
        n_live: u32,
    },
    /// The faulty mask names a tile outside the mesh.
    FaultyMaskOutOfRange {
        /// The offending tile.
        tile: u32,
    },
    /// The faulty mask splits the live tiles into disconnected islands, so no
    /// static route can join them.
    FaultyMeshDisconnected,
    /// Co-residency link: the two programs target different mesh shapes.
    CoResidentMeshMismatch,
    /// Co-residency link: a tile is live in both programs.
    CoResidentOverlap {
        /// The doubly-claimed tile.
        tile: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TileCountNotPowerOfTwo { n_tiles } => {
                write!(f, "tile count {n_tiles} is not a power of two")
            }
            CompileError::LiveTileCountNotPowerOfTwo { n_live } => {
                write!(f, "live tile count {n_live} is not a nonzero power of two")
            }
            CompileError::FaultyMaskOutOfRange { tile } => {
                write!(f, "faulty mask names tile {tile}, outside the mesh")
            }
            CompileError::FaultyMeshDisconnected => {
                write!(f, "faulty mask disconnects the live mesh")
            }
            CompileError::CoResidentMeshMismatch => {
                write!(f, "co-resident programs target different mesh shapes")
            }
            CompileError::CoResidentOverlap { tile } => {
                write!(f, "tile {tile} is live in both co-resident programs")
            }
        }
    }
}

impl Error for CompileError {}

/// Per-block compilation metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockReport {
    /// Task-graph size.
    pub n_nodes: usize,
    /// Clusters after the clustering phase.
    pub n_clusters: usize,
    /// Scheduled communication paths.
    pub n_comm_paths: usize,
    /// Estimated schedule length in cycles.
    pub makespan: u64,
    /// Virtual registers spilled, summed over tiles.
    pub spills: usize,
    /// The scheduler's predicted space-time map (for observed-trace diffing).
    pub predicted: schedule::PredictedBlock,
    /// The placement phase's accepted-swap audit log.
    pub placement: partition::PlacementLog,
}

/// Wall-clock time spent in each compiler phase, summed over all blocks.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Lowering: task-graph construction from the IR block.
    pub lower: Duration,
    /// Partitioning: clustering + merging (placement reported separately).
    pub partition: Duration,
    /// Placement: mapping merged partitions onto physical tiles.
    pub place: Duration,
    /// Event scheduling (list scheduler + comm-path reservation).
    pub schedule: Duration,
    /// Code generation from the schedule.
    pub codegen: Duration,
    /// Register allocation over all tiles.
    pub regalloc: Duration,
    /// Linking per-tile streams and branch broadcasts.
    pub link: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.lower
            + self.partition
            + self.place
            + self.schedule
            + self.codegen
            + self.regalloc
            + self.link
    }

    /// `(name, duration)` rows in pipeline order, for report rendering.
    pub fn rows(&self) -> [(&'static str, Duration); 7] {
        [
            ("lower", self.lower),
            ("partition", self.partition),
            ("place", self.place),
            ("schedule", self.schedule),
            ("codegen", self.codegen),
            ("regalloc", self.regalloc),
            ("link", self.link),
        ]
    }

    /// Adds another timing record field-wise (summing per-block timings; with
    /// several workers the sum exceeds the compile's wall-clock time).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.lower += other.lower;
        self.partition += other.partition;
        self.place += other.place;
        self.schedule += other.schedule;
        self.codegen += other.codegen;
        self.regalloc += other.regalloc;
        self.link += other.link;
    }
}

/// Whole-program compilation metrics.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Per-block metrics, indexed by block.
    pub blocks: Vec<BlockReport>,
    /// Per-phase compile timings, summed over blocks (with several workers the
    /// per-phase sum exceeds [`wall`](Self::wall)).
    pub timings: PhaseTimings,
    /// Worker threads the per-block fan-out actually used.
    pub threads: usize,
    /// Block-cache effectiveness for this compile. Note that a *cold* parallel
    /// compile may count duplicate blocks racing to the same key as several
    /// misses; warm-cache counts are exact.
    pub cache: blockcache::CacheStats,
    /// Wall-clock time per block (lookup + compile; near zero on a cache hit).
    pub block_wall: Vec<Duration>,
    /// Whether each block was served from the cache.
    pub block_cached: Vec<bool>,
    /// End-to-end wall-clock time of the compile.
    pub wall: Duration,
}

impl CompileReport {
    /// Total spills over all blocks and tiles.
    pub fn total_spills(&self) -> usize {
        self.blocks.iter().map(|b| b.spills).sum()
    }

    /// Largest task graph compiled.
    pub fn max_block_nodes(&self) -> usize {
        self.blocks.iter().map(|b| b.n_nodes).max().unwrap_or(0)
    }

    /// Sum of predicted block makespans — the scheduler's estimate of one
    /// straight-line pass over the program (loops executed once).
    pub fn predicted_makespan(&self) -> u64 {
        self.blocks.iter().map(|b| b.makespan).sum()
    }
}

/// A compiled program plus everything needed to load, run, and read it back.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Per-tile instruction streams.
    pub machine_program: MachineProgram,
    /// Data layout used (homes, bases, classification).
    pub layout: DataLayout,
    /// Machine configuration compiled for.
    pub config: MachineConfig,
    /// Compilation metrics.
    pub report: CompileReport,
    /// Source-provenance tables joining machine pcs back to IR values and
    /// source spans (see [`crate::provenance`]).
    pub provenance: ProvenanceMap,
}

impl CompiledProgram {
    /// Creates a machine and loads this program's initial memory image.
    pub fn instantiate(&self, program: &Program) -> Machine {
        self.instantiate_with_sink(program, raw_machine::trace::NullSink)
    }

    /// Like [`instantiate`](Self::instantiate), but attaches `sink` as the
    /// machine's event consumer (see [`raw_machine::trace`]).
    pub fn instantiate_with_sink<S: EventSink>(&self, program: &Program, sink: S) -> Machine<S> {
        let mut machine = Machine::with_sink(self.config.clone(), &self.machine_program, sink);
        for (tile, words) in initial_memory_images(program, &self.layout)
            .into_iter()
            .enumerate()
        {
            for (addr, value) in words {
                machine.set_mem_word(TileId::from_raw(tile as u32), addr, value);
            }
        }
        // Under a faulty mask, dynamic references interleave over the live
        // tiles in slot order rather than the default physical interleave.
        if !self.layout.identity_homes() {
            for &t in &self.layout.live {
                machine.set_tile_dyn_homes(t, self.layout.live.clone());
            }
        }
        machine
    }

    /// Reads the machine-visible final state (variables from their home tiles,
    /// arrays gathered across the interleaved memories) in the same format as
    /// the reference interpreter, for bit-exact comparison.
    pub fn extract_result<S: EventSink>(
        &self,
        program: &Program,
        machine: &Machine<S>,
    ) -> ExecResult {
        let vars = program
            .vars
            .iter()
            .enumerate()
            .map(|(i, decl)| {
                let v = raw_ir::VarId::from_raw(i as u32);
                let bits = machine.mem_word(self.layout.var_home(v), self.layout.var_addr(v));
                Imm::from_bits(bits, decl.ty)
            })
            .collect();
        let arrays = program
            .arrays
            .iter()
            .enumerate()
            .map(|(i, decl)| {
                let a = raw_ir::ArrayId::from_raw(i as u32);
                (0..decl.len())
                    .map(|k| {
                        machine
                            .mem_word(self.layout.element_home(k), self.layout.element_local(a, k))
                    })
                    .collect()
            })
            .collect();
        ExecResult {
            vars,
            arrays,
            array_tys: program.arrays.iter().map(|a| a.ty).collect(),
            blocks_executed: 0,
            insts_executed: 0,
        }
    }

    /// Loads, runs, and reads back in one call.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors ([`SimError`]).
    pub fn run(&self, program: &Program) -> Result<(ExecResult, RunReport), SimError> {
        let mut machine = self.instantiate(program);
        let report = machine.run()?;
        Ok((self.extract_result(program, &machine), report))
    }
}

/// Compiles `program` for `config` with the paper's full orchestration
/// pipeline (space-time scheduling).
///
/// # Errors
///
/// Returns [`CompileError`] for unsupported machine shapes.
pub fn compile(
    program: &Program,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> Result<CompiledProgram, CompileError> {
    compile_with_cache(program, config, options, &BlockCache::from_env())
}

/// Compiles `program` sequentially for a single tile — the stand-in for the
/// paper's baseline MIPS compiler (Machine-SUIF), against which speedups are
/// measured.
///
/// The baseline schedules each basic block with **source-order priority**: it
/// overlaps functional-unit latencies (as any competent sequential compiler
/// does) but keeps instructions close to program order, so live ranges — and
/// hence spills — stay near the source program's. This is the contrast the
/// paper draws in §4.2/§6: RAWCC's parallelism-maximising scheduler inflates
/// register pressure, which costs it on a single tile (fpppp-kernel).
///
/// # Errors
///
/// Returns [`CompileError`] for unsupported machine shapes.
pub fn compile_baseline(
    program: &Program,
    config: &MachineConfig,
) -> Result<CompiledProgram, CompileError> {
    assert_eq!(
        config.n_tiles(),
        1,
        "the baseline compiler targets a single tile"
    );
    let options = CompilerOptions {
        priority: crate::options::PriorityScheme::SourceOrder,
        ..Default::default()
    };
    compile_with_cache(program, config, &options, &BlockCache::from_env())
}

/// Resolves the worker-thread count: explicit option, then the `RAWCC_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
fn resolve_threads(options: &CompilerOptions) -> usize {
    if options.threads > 0 {
        return options.threads;
    }
    if let Some(n) = std::env::var("RAWCC_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives the annealing seed for one block from the global seed and the
/// block's canonical content hash.
///
/// Content-based (rather than block-index-based) derivation makes the RNG
/// stream a pure function of the block itself: deleting or reordering an
/// *unrelated* block leaves every other block's placement unchanged, and a
/// cached bundle stays valid wherever the block appears (see DESIGN.md §11).
fn block_options(options: &CompilerOptions, block_hash: u64) -> CompilerOptions {
    let mut o = *options;
    if let PlacementAlgorithm::Annealing { seed } = o.placement {
        let mut s = seed ^ block_hash;
        o.placement = PlacementAlgorithm::Annealing {
            seed: raw_testkit::rng::splitmix64(&mut s),
        };
    }
    o
}

/// Debug invariant: every virtual-register source in generated code is
/// defined earlier in the same stream (catches fold/scheduler ordering bugs).
#[cfg(debug_assertions)]
fn check_vcode_defs(vcode: &[TileBlockCode]) {
    for (t, c) in vcode.iter().enumerate() {
        let mut defined = vec![false; c.n_vregs as usize];
        for (pos, inst) in c.insts.iter().enumerate() {
            for s in inst.sources() {
                if let raw_machine::isa::Src::Reg(r) = s {
                    assert!(
                        defined[r as usize],
                        "tile {t} pos {pos}: use of v{r} before def: {inst:?}"
                    );
                }
            }
            if let Some(raw_machine::isa::Dst::Reg(r)) = inst.dst() {
                defined[r as usize] = true;
            }
        }
    }
}

/// Compiles one basic block end-to-end (task graph → partition → placement →
/// event schedule → codegen → regalloc) into a position-independent
/// [`BlockBundle`], plus the wall-clock time spent per phase.
///
/// This function is **pure**: the bundle depends only on the arguments — no
/// shared mutable state, no environment, no compile-order coupling (the
/// annealer's RNG stream is derived from `block_hash`, the block's canonical
/// content hash from [`blockcache::canonical_block_bytes`]). Purity is what
/// makes the block-level fan-out in [`compile_with_cache`] and the
/// content-addressed [`BlockCache`] sound; `tests/parallel_determinism.rs`
/// enforces it end to end.
pub fn compile_block(
    block: &Block,
    layout: &DataLayout,
    config: &MachineConfig,
    options: &CompilerOptions,
    block_hash: u64,
) -> (BlockBundle, PhaseTimings) {
    let options = block_options(options, block_hash);
    let mut timings = PhaseTimings::default();

    let phase_start = Instant::now();
    let graph = TaskGraph::build(block, layout, config);
    timings.lower += phase_start.elapsed();
    debug_assert!(graph.order_edges_colocated());

    let phase_start = Instant::now();
    let (part, place_time) = partition::partition_timed(&graph, config, &options);
    timings.partition += phase_start.elapsed().saturating_sub(place_time);
    timings.place += place_time;
    let phase_start = Instant::now();
    let sched = schedule::schedule(&graph, &part, config, &options);
    timings.schedule += phase_start.elapsed();
    let assignment = &part.assignment;

    let node_tile: Vec<u32> = assignment.iter().map(|t| t.index() as u32).collect();
    let node_bin: Vec<u32> = (0..graph.len())
        .map(|i| {
            part.bin_of_node
                .get(i)
                .map(|&x| x as u32)
                .unwrap_or(u32::MAX)
        })
        .collect();

    // Branch condition producer.
    let branch_cond = match &block.term {
        Terminator::Branch { cond, .. } => {
            let def = graph.def_of[cond];
            Some((*cond, assignment[def]))
        }
        _ => None,
    };

    let phase_start = Instant::now();
    let vcode: Vec<TileBlockCode> = codegen::generate(
        &graph,
        &sched,
        layout,
        branch_cond,
        options.fold_communication,
    );
    timings.codegen += phase_start.elapsed();
    #[cfg(debug_assertions)]
    check_vcode_defs(&vcode);
    let phase_start = Instant::now();
    let phys: Vec<regalloc::AllocResult> = vcode
        .into_iter()
        .map(|c| {
            regalloc::allocate(
                c.insts,
                c.prov,
                c.n_vregs,
                c.cond_vreg,
                config.gprs,
                layout.spill_base,
            )
        })
        .collect();
    timings.regalloc += phase_start.elapsed();

    // Switch ops resolve to their producing nodes through `def_of`
    // (block-relative ids; the merge phase rebases them).
    let switch: Vec<Vec<(Vec<_>, u32)>> = sched
        .switch_ops
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|(_, v, pairs)| {
                    let rec = graph.def_of.get(v).map(|&n| n as u32).unwrap_or(NO_PROV);
                    (pairs.clone(), rec)
                })
                .collect()
        })
        .collect();

    let report = BlockReport {
        n_nodes: graph.len(),
        n_clusters: part.n_clusters,
        n_comm_paths: sched.n_comm_paths,
        makespan: sched.makespan,
        spills: phys.iter().map(|p| p.n_spilled).sum(),
        predicted: sched.predicted(),
        placement: part.placement,
    };
    let bundle = BlockBundle {
        report,
        phys,
        switch,
        cond_producer: branch_cond.map(|(_, t)| t),
        cond_node: branch_cond
            .and_then(|(c, _)| graph.def_of.get(&c).map(|&n| n as u32))
            .unwrap_or(NO_PROV),
        node_tile,
        node_bin,
    };
    (bundle, timings)
}

/// Like [`compile`], but with an explicit [`BlockCache`], so callers can share
/// a warm cache across compiles (bench loops, the determinism battery, build
/// servers) instead of the per-call cache [`compile`] builds from the
/// environment.
///
/// # Errors
///
/// Returns [`CompileError`] for unsupported machine shapes.
pub fn compile_with_cache(
    program: &Program,
    config: &MachineConfig,
    options: &CompilerOptions,
    cache: &BlockCache,
) -> Result<CompiledProgram, CompileError> {
    let compile_start = Instant::now();
    let n_tiles = config.n_tiles();
    if config.faulty.is_empty() {
        if !n_tiles.is_power_of_two() {
            return Err(CompileError::TileCountNotPowerOfTwo { n_tiles });
        }
    } else {
        if let Some(t) = config.faulty.iter().find(|t| t.index() as u32 >= n_tiles) {
            return Err(CompileError::FaultyMaskOutOfRange {
                tile: t.index() as u32,
            });
        }
        let n_live = config.n_live();
        if n_live == 0 || !n_live.is_power_of_two() {
            return Err(CompileError::LiveTileCountNotPowerOfTwo { n_live });
        }
        if !config.live_connected() {
            return Err(CompileError::FaultyMeshDisconnected);
        }
    }
    let layout = DataLayout::build(program, config);
    let n = n_tiles as usize;

    // ---- Fan blocks out over workers: each block is looked up in the cache
    // and compiled fresh on miss. Results land in per-block slots, so the
    // merge below runs in program order no matter the completion order.
    let key_ctx = KeyContext::new(&layout, config, options);
    let blocks: Vec<&Block> = program.iter_blocks().map(|(_, b)| b).collect();
    let workers = resolve_threads(options).min(blocks.len()).max(1);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let evicted_bytes = AtomicU64::new(0);

    type Compiled = (Arc<BlockBundle>, PhaseTimings, Duration, bool);
    let do_block = |block: &Block| -> Compiled {
        let start = Instant::now();
        let bytes = blockcache::canonical_block_bytes(block);
        let block_hash = raw_testkit::hash64(&bytes);
        let key = key_ctx.key(&bytes);
        let (found, evicted) = cache.get(&key);
        evictions.fetch_add(evicted.entries, Ordering::Relaxed);
        evicted_bytes.fetch_add(evicted.bytes, Ordering::Relaxed);
        if let Some(bundle) = found {
            hits.fetch_add(1, Ordering::Relaxed);
            if cache.verify() {
                let (fresh, _) = compile_block(block, &layout, config, options, block_hash);
                assert!(
                    fresh == *bundle,
                    "block-cache verify: cached bundle diverges from fresh compile \
                     (key {key:?})"
                );
            }
            return (bundle, PhaseTimings::default(), start.elapsed(), true);
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let (bundle, timings) = compile_block(block, &layout, config, options, block_hash);
        let bundle = Arc::new(bundle);
        let evicted = cache.put(key, bundle.clone());
        evictions.fetch_add(evicted.entries, Ordering::Relaxed);
        evicted_bytes.fetch_add(evicted.bytes, Ordering::Relaxed);
        (bundle, timings, start.elapsed(), false)
    };

    let mut compiled: Vec<Option<Compiled>> = (0..blocks.len()).map(|_| None).collect();
    if workers == 1 {
        for (slot, block) in compiled.iter_mut().zip(&blocks) {
            *slot = Some(do_block(block));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(block) = blocks.get(i) else { break };
                            out.push((i, do_block(block)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("compile worker panicked") {
                    compiled[i] = Some(result);
                }
            }
        });
    }

    // ---- Deterministic merge, in program block order: reports, then the
    // provenance records — rebuilt from the block's IR plus the bundle's
    // tile/bin assignment, which keeps bundles position-independent.
    let mut report = CompileReport {
        threads: workers,
        ..CompileReport::default()
    };
    let mut prov_map = ProvenanceMap::default();
    let mut bundles: Vec<Arc<BlockBundle>> = Vec::with_capacity(blocks.len());
    for (b, block) in blocks.iter().enumerate() {
        let (bundle, timings, wall, cached) = compiled[b].take().expect("every block compiled");
        report.timings.accumulate(&timings);
        report.block_wall.push(wall);
        report.block_cached.push(cached);
        report.blocks.push(bundle.report.clone());

        let block_base = prov_map.records.len() as u32;
        prov_map.block_base.push(block_base);
        for (i, inst) in block.insts.iter().enumerate() {
            prov_map.records.push(ProvRecord {
                span: inst.span,
                value: inst.dst,
                block: b as u32,
                node: i as u32,
                tile: bundle.node_tile[i],
                bin: bundle.node_bin[i],
                kind: provenance::mnemonic(&inst.kind),
            });
        }
        bundles.push(bundle);
    }
    // Rebase a block-relative node id to an absolute provenance record id.
    let rebase = |base: u32, node: u32| {
        if node == NO_PROV {
            NO_PROV
        } else {
            base + node
        }
    };

    // ---- Link per-tile streams, building the pc → provenance tables in
    // lockstep (every assembler emission appends exactly one instruction, so
    // pushing one table entry per emission keeps pc alignment; asserted below).
    let phase_start = Instant::now();
    let mut tiles = Vec::with_capacity(n);
    for t in 0..n {
        // The linker refuses to emit anything onto a faulty tile: its
        // processor and switch streams stay empty (an empty stream halts
        // immediately), and its provenance tables stay empty in lockstep.
        if config.is_faulty(TileId::from_raw(t as u32)) {
            tiles.push(TileCode {
                proc: Vec::new(),
                switch: Vec::new(),
            });
            prov_map.proc_pc.push(Vec::new());
            prov_map.switch_pc.push(Vec::new());
            continue;
        }
        let mut pa = ProcAsm::new();
        let plabels: Vec<_> = program.blocks.iter().map(|_| pa.new_label()).collect();
        let mut sa = SwitchAsm::new();
        let slabels: Vec<_> = program.blocks.iter().map(|_| sa.new_label()).collect();
        let switch_active = n > 1;
        let mut proc_pc: Vec<u32> = Vec::new();
        let mut switch_pc: Vec<u32> = Vec::new();

        for (b, block) in program.blocks.iter().enumerate() {
            let base = prov_map.block_base[b];
            pa.bind(plabels[b]);
            for (inst, &node) in bundles[b].phys[t]
                .insts
                .iter()
                .zip(&bundles[b].phys[t].prov)
            {
                pa.push(*inst);
                proc_pc.push(rebase(base, node));
            }
            if switch_active {
                sa.bind(slabels[b]);
                for (pairs, rec) in &bundles[b].switch[t] {
                    sa.route(pairs);
                    switch_pc.push(rebase(base, *rec));
                }
            }
            match &block.term {
                Terminator::Jump(target) => {
                    pa.jump(plabels[target.index()]);
                    proc_pc.push(NO_PROV);
                    if switch_active {
                        sa.jump(slabels[target.index()]);
                        switch_pc.push(NO_PROV);
                    }
                }
                Terminator::Halt => {
                    pa.halt();
                    proc_pc.push(NO_PROV);
                    if switch_active {
                        sa.halt();
                        switch_pc.push(NO_PROV);
                    }
                }
                Terminator::Branch {
                    if_true, if_false, ..
                } => {
                    let producer = bundles[b].cond_producer.expect("branch has a producer");
                    let cond_rec = rebase(base, bundles[b].cond_node);
                    if producer.index() == t {
                        let cond_reg = bundles[b].phys[t]
                            .cond_reg
                            .expect("producer keeps the condition live");
                        pa.bnez(
                            raw_machine::isa::Src::Reg(cond_reg),
                            plabels[if_true.index()],
                        );
                    } else {
                        pa.bnez(raw_machine::isa::Src::PortIn, plabels[if_true.index()]);
                    }
                    // The branch waits on the condition: attribute it (and any
                    // stall it suffers) to the condition's source line.
                    proc_pc.push(cond_rec);
                    pa.jump(plabels[if_false.index()]);
                    proc_pc.push(NO_PROV);
                    if switch_active {
                        let routes = broadcast_routes(config, producer);
                        sa.route(&routes[t]);
                        switch_pc.push(cond_rec);
                        sa.bnez(0, slabels[if_true.index()]);
                        switch_pc.push(cond_rec);
                        sa.jump(slabels[if_false.index()]);
                        switch_pc.push(NO_PROV);
                    }
                }
            }
        }
        debug_assert_eq!(proc_pc.len(), pa.here(), "tile {t}: proc pc table skew");
        debug_assert_eq!(switch_pc.len(), sa.here(), "tile {t}: switch pc table skew");
        let switch = if switch_active {
            sa.finish()
        } else {
            switch_pc.push(NO_PROV);
            vec![raw_machine::isa::SInst::Halt]
        };
        tiles.push(TileCode {
            proc: pa.finish(),
            switch,
        });
        prov_map.proc_pc.push(proc_pc);
        prov_map.switch_pc.push(switch_pc);
    }
    report.timings.link += phase_start.elapsed();
    report.cache = blockcache::CacheStats {
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        evictions: evictions.load(Ordering::Relaxed),
        evicted_bytes: evicted_bytes.load(Ordering::Relaxed),
    };
    report.wall = compile_start.elapsed();

    Ok(CompiledProgram {
        machine_program: MachineProgram { tiles },
        layout,
        config: config.clone(),
        report,
        provenance: prov_map,
    })
}

/// Two kernels compiled onto **disjoint live partitions** of one mesh, linked
/// into a single machine image. Each input must have been compiled with a
/// faulty mask covering (at least) the other's live tiles; the link verifies
/// disjointness and merges per-tile streams, so each tile carries code from
/// exactly one program (or none).
#[derive(Clone, Debug)]
pub struct CoResident {
    /// Merged per-tile instruction streams.
    pub machine_program: MachineProgram,
    /// Mesh configuration for the merged run: faulty set is the intersection
    /// of the inputs' masks (tiles live in *either* program must run).
    pub config: MachineConfig,
    /// The linked programs, in link order.
    pub parts: [CompiledProgram; 2],
}

/// Links two compiled programs with disjoint live tile sets into one mesh.
///
/// # Errors
///
/// [`CompileError::CoResidentMeshMismatch`] if the mesh shapes differ,
/// [`CompileError::CoResidentOverlap`] if any tile is live in both programs.
pub fn link_coresident(
    a: &CompiledProgram,
    b: &CompiledProgram,
) -> Result<CoResident, CompileError> {
    if a.config.rows != b.config.rows || a.config.cols != b.config.cols {
        return Err(CompileError::CoResidentMeshMismatch);
    }
    let n = a.config.n_tiles() as usize;
    let owner_a: Vec<bool> = (0..n)
        .map(|t| !a.config.is_faulty(TileId::from_raw(t as u32)))
        .collect();
    let owner_b: Vec<bool> = (0..n)
        .map(|t| !b.config.is_faulty(TileId::from_raw(t as u32)))
        .collect();
    if let Some(t) = (0..n).find(|&t| owner_a[t] && owner_b[t]) {
        return Err(CompileError::CoResidentOverlap { tile: t as u32 });
    }
    let tiles: Vec<TileCode> = (0..n)
        .map(|t| {
            if owner_a[t] {
                a.machine_program.tiles[t].clone()
            } else if owner_b[t] {
                b.machine_program.tiles[t].clone()
            } else {
                TileCode {
                    proc: Vec::new(),
                    switch: Vec::new(),
                }
            }
        })
        .collect();
    let mut faulty = raw_machine::TileMask::EMPTY;
    for t in 0..n as u32 {
        if !owner_a[t as usize] && !owner_b[t as usize] {
            faulty.insert(TileId::from_raw(t));
        }
    }
    let config = a.config.clone().with_faulty(faulty);
    Ok(CoResident {
        machine_program: MachineProgram { tiles },
        config,
        parts: [a.clone(), b.clone()],
    })
}

impl CoResident {
    /// The physical tiles owned by part `i` (0 or 1).
    pub fn tiles_of(&self, i: usize) -> Vec<TileId> {
        self.parts[i].layout.live.clone()
    }

    /// Creates a machine loaded with both programs' initial memory images.
    pub fn instantiate(&self, progs: [&Program; 2]) -> Machine {
        self.instantiate_with_sink(progs, raw_machine::trace::NullSink)
    }

    /// Like [`instantiate`](Self::instantiate) with an event sink attached.
    pub fn instantiate_with_sink<S: EventSink>(&self, progs: [&Program; 2], sink: S) -> Machine<S> {
        let mut machine = Machine::with_sink(self.config.clone(), &self.machine_program, sink);
        for (part, prog) in self.parts.iter().zip(progs) {
            for (tile, words) in initial_memory_images(prog, &part.layout)
                .into_iter()
                .enumerate()
            {
                for (addr, value) in words {
                    machine.set_mem_word(TileId::from_raw(tile as u32), addr, value);
                }
            }
            // Each program's dynamic references stay inside its own
            // partition: its issue tiles interleave over its own live set.
            for &t in &part.layout.live {
                machine.set_tile_dyn_homes(t, part.layout.live.clone());
            }
        }
        machine
    }

    /// Runs both programs to completion on one mesh and reads back each
    /// program's final state separately.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors ([`SimError`]).
    pub fn run(&self, progs: [&Program; 2]) -> Result<([ExecResult; 2], RunReport), SimError> {
        let mut machine = self.instantiate(progs);
        let report = machine.run()?;
        Ok((
            [
                self.parts[0].extract_result(progs[0], &machine),
                self.parts[1].extract_result(progs[1], &machine),
            ],
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::builder::ProgramBuilder;
    use raw_ir::interp::Interpreter;
    use raw_ir::{MemHome, Ty};

    fn check_vs_interpreter(program: &Program, n_tiles: u32) {
        let config = MachineConfig::square(n_tiles);
        let compiled = compile(program, &config, &CompilerOptions::default()).expect("compiles");
        let (result, _) = compiled.run(program).expect("simulates");
        let golden = Interpreter::new(program).run().expect("interprets");
        assert!(
            result.state_eq(&golden),
            "n_tiles={n_tiles}\nsim:    {:?}\ngolden: {:?}",
            result.vars,
            golden.vars
        );
    }

    fn figure6_program() -> Program {
        let mut b = ProgramBuilder::new("figure6");
        let a = b.var_i32("a", 3);
        let bb = b.var_i32("b", 4);
        let x = b.var_i32("x", 0);
        let y = b.var_i32("y", 0);
        let z = b.var_i32("z", 0);
        let va = b.read_var(a);
        let vb = b.read_var(bb);
        let y1 = b.add(va, vb);
        let z1 = b.mul(va, va);
        let t1 = b.mul(y1, va);
        let five = b.const_i32(5);
        let x1 = b.mul(t1, five);
        let t2 = b.mul(y1, vb);
        let six = b.const_i32(6);
        let y2 = b.mul(t2, six);
        b.write_var(z, z1);
        b.write_var(x, x1);
        b.write_var(y, y2);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn figure6_runs_on_all_machine_sizes() {
        let p = figure6_program();
        for n in [1, 2, 4, 8] {
            check_vs_interpreter(&p, n);
        }
    }

    #[test]
    fn branching_loop_runs_distributed() {
        // sum = Σ i for i in 0..10 with per-iteration branch broadcast.
        let mut b = ProgramBuilder::new("loop");
        let i = b.var_i32("i", 0);
        let sum = b.var_i32("sum", 0);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.jump(body);
        b.switch_to(body);
        let vi = b.read_var(i);
        let vs = b.read_var(sum);
        let ns = b.add(vs, vi);
        let one = b.const_i32(1);
        let ni = b.add(vi, one);
        b.write_var(sum, ns);
        b.write_var(i, ni);
        let ten = b.const_i32(10);
        let c = b.slt(ni, ten);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.halt();
        let p = b.finish().unwrap();
        for n in [1, 2, 4] {
            check_vs_interpreter(&p, n);
        }
    }

    #[test]
    fn static_array_kernel_distributes() {
        // B[i] = A[i] * A[i] for i in 0..8, fully unrolled, residues annotated
        // for a 4-tile machine.
        let n_tiles = 4u32;
        let mut b = ProgramBuilder::new("square");
        let a = b.array("A", Ty::I32, &[8]);
        let bb = b.array("B", Ty::I32, &[8]);
        b.set_array_init(a, (0..8).map(|k| raw_ir::Imm::I(k + 1)).collect());
        for k in 0..8u32 {
            let idx = b.const_i32(k as i32);
            let v = b.load(a, idx, MemHome::Static(k % n_tiles));
            let sq = b.mul(v, v);
            b.store(bb, idx, sq, MemHome::Static(k % n_tiles));
        }
        b.halt();
        let p = b.finish().unwrap();
        check_vs_interpreter(&p, n_tiles);
        check_vs_interpreter(&p, 1); // residues mod 1 still work
    }

    #[test]
    fn dynamic_array_kernel_round_trips() {
        let mut b = ProgramBuilder::new("dynamic");
        let a = b.array("A", Ty::I32, &[8]);
        b.set_array_init(a, (0..8).map(raw_ir::Imm::I).collect());
        // A[A[3]] = 99 — the inner value is data-dependent: dynamic access.
        let three = b.const_i32(3);
        let inner = b.load(a, three, MemHome::Dynamic);
        let v99 = b.const_i32(99);
        b.store(a, inner, v99, MemHome::Dynamic);
        b.halt();
        let p = b.finish().unwrap();
        for n in [1, 2, 4] {
            check_vs_interpreter(&p, n);
        }
    }

    #[test]
    fn baseline_matches_interpreter() {
        let p = figure6_program();
        let config = MachineConfig::square(1);
        let compiled = compile_baseline(&p, &config).unwrap();
        let (result, report) = compiled.run(&p).unwrap();
        let golden = Interpreter::new(&p).run().unwrap();
        assert!(result.state_eq(&golden));
        assert!(report.cycles > 0);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let p = figure6_program();
        let config = MachineConfig::grid(1, 3);
        assert!(matches!(
            compile(&p, &config, &CompilerOptions::default()),
            Err(CompileError::TileCountNotPowerOfTwo { n_tiles: 3 })
        ));
    }

    #[test]
    fn parallel_run_is_faster_than_sequential_for_wide_block() {
        // 16 independent fp chains: 4 tiles should beat 1 tile.
        let mut b = ProgramBuilder::new("wide");
        let out: Vec<_> = (0..16).map(|k| b.var_f32(format!("o{k}"), 0.0)).collect();
        for (k, &o) in out.iter().enumerate() {
            let mut v = b.const_f32(1.0 + k as f32);
            for _ in 0..8 {
                v = b.mul_f(v, v);
            }
            b.write_var(o, v);
        }
        b.halt();
        let p = b.finish().unwrap();

        let cycles = |n: u32| -> u64 {
            let config = MachineConfig::square(n);
            let compiled = compile(&p, &config, &CompilerOptions::default()).unwrap();
            let (result, report) = compiled.run(&p).unwrap();
            let golden = Interpreter::new(&p).run().unwrap();
            assert!(result.state_eq(&golden));
            report.cycles
        };
        let c1 = cycles(1);
        let c4 = cycles(4);
        assert!(
            c4 * 2 < c1,
            "expected ≥2x speedup on 4 tiles: c1={c1} c4={c4}"
        );
    }
}

//! The instruction partitioner (paper §4.1): clustering → merging → placement.
//!
//! * **Clustering** groups instructions whose parallelism is too fine to pay
//!   for communication, using a greedy Dominant-Sequence-style pass over the
//!   task graph in topological order with an idealized uniform communication
//!   cost (paper: Yang & Gerasoulis DSC).
//! * **Merging** reduces the cluster count to the number of tiles using the
//!   paper's load-balance heuristic: clusters are visited in decreasing size
//!   and merged into the least-loaded partition.
//! * **Placement** maps partitions onto physical tiles and runs a greedy
//!   swap pass minimising total communication hops on the real mesh.
//!
//! Nodes pinned by the data partitioner (memory and variable accesses) carry
//! their tile through all three phases; a partition containing a pin is locked
//! to that tile during placement.

use crate::options::CompilerOptions;
use crate::taskgraph::{EdgeKind, TaskGraph};
use raw_machine::{MachineConfig, TileId};

/// Result of partitioning one block's task graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Executing tile per node.
    pub assignment: Vec<TileId>,
    /// Number of clusters produced by the clustering phase (reporting).
    pub n_clusters: usize,
    /// Placement bin per node (bin index = tile index before the placement
    /// phase permuted bins onto physical tiles). Lets the audit report tie a
    /// node's final tile back to the swap that put it there.
    pub bin_of_node: Vec<usize>,
    /// Audit log of the placement phase.
    pub placement: PlacementLog,
}

/// One accepted swap in the placement optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementStep {
    /// Move index within the optimization run at which the swap was accepted.
    pub step: usize,
    /// The two swapped bins (bin index = tile index before optimization).
    pub bins: (usize, usize),
    /// Exact communication-cost delta of the swap (negative = improvement).
    pub delta: i64,
}

/// Audit log of the placement phase: which algorithm ran, the communication
/// cost (total data-edge hops) before and after, and every accepted swap that
/// made it into the final assignment, in application order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementLog {
    /// `"identity"`, `"greedy-swap"`, or `"annealing"`.
    pub algorithm: &'static str,
    /// Total hop cost of the identity assignment.
    pub initial_cost: i64,
    /// Total hop cost of the final assignment.
    pub final_cost: i64,
    /// Accepted swaps present in the final assignment (for annealing, the
    /// best-prefix replay; worsening moves later abandoned are not listed).
    pub steps: Vec<PlacementStep>,
}

impl Default for PlacementLog {
    fn default() -> Self {
        PlacementLog {
            algorithm: "identity",
            initial_cost: 0,
            final_cost: 0,
            steps: Vec::new(),
        }
    }
}

impl PlacementLog {
    /// The last accepted swap that touched `bin`, if any — "this bin landed on
    /// its tile at step N".
    pub fn last_move_of_bin(&self, bin: usize) -> Option<&PlacementStep> {
        self.steps
            .iter()
            .rev()
            .find(|s| s.bins.0 == bin || s.bins.1 == bin)
    }
}

/// Runs the full partitioning pipeline.
///
/// # Panics
///
/// Panics if two mutually pinned nodes are forced into conflicting tiles
/// (cannot happen for graphs built by [`TaskGraph::build`]).
pub fn partition(
    graph: &TaskGraph,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> Partition {
    partition_timed(graph, config, options).0
}

/// Like [`partition`], but also reports how long the placement phase took
/// (clustering + merging dominate the rest; placement is the phase the
/// compile-timing report wants isolated because its cost is tunable via
/// [`CompilerOptions::placement`]).
pub fn partition_timed(
    graph: &TaskGraph,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> (Partition, std::time::Duration) {
    let n_tiles = config.n_tiles() as usize;
    if graph.is_empty() {
        return (
            Partition {
                assignment: Vec::new(),
                n_clusters: 0,
                bin_of_node: Vec::new(),
                placement: PlacementLog::default(),
            },
            std::time::Duration::ZERO,
        );
    }
    let clusters = if options.clustering {
        cluster(graph, options.cluster_comm_cost)
    } else {
        // Ablation: every node is its own cluster.
        Clustering {
            of_node: (0..graph.len()).collect(),
            pins: graph.pins.clone(),
            sizes: graph.costs.iter().map(|&c| c as u64).collect(),
            count: graph.len(),
        }
    };
    let n_clusters = clusters.count;
    let bins = merge(graph, &clusters, n_tiles, config);
    let place_start = std::time::Instant::now();
    let (tile_of_bin, placement) = place(graph, &clusters, &bins, config, options);
    let place_time = place_start.elapsed();
    let bin_of_node: Vec<usize> = (0..graph.len())
        .map(|n| bins.of_cluster[clusters.of_node[n]])
        .collect();
    let assignment = bin_of_node.iter().map(|&b| tile_of_bin[b]).collect();
    (
        Partition {
            assignment,
            n_clusters,
            bin_of_node,
            placement,
        },
        place_time,
    )
}

/// Clustering phase output.
#[derive(Debug)]
struct Clustering {
    /// Cluster id per node (dense, 0-based after compaction).
    of_node: Vec<usize>,
    /// Pin per cluster.
    pins: Vec<Option<TileId>>,
    /// Total cost per cluster.
    sizes: Vec<u64>,
    /// Number of clusters.
    count: usize,
}

/// Greedy DSC-style clustering with an idealized fully connected switch of
/// uniform latency `comm_cost` (paper §4.1).
fn cluster(graph: &TaskGraph, comm_cost: u32) -> Clustering {
    let n = graph.len();
    let comm = comm_cost as u64;
    // Cluster state: nodes start as singletons created lazily.
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut cluster_pin: Vec<Option<TileId>> = Vec::new();
    let mut cluster_avail: Vec<u64> = Vec::new(); // sequential availability
    let mut finish: Vec<u64> = vec![0; n];

    for node in graph.topo_order() {
        let pin = graph.pins[node];
        // Start time if assigned to cluster `c` (None = fresh singleton).
        let start_in =
            |c: Option<usize>, cluster_of: &Vec<Option<usize>>, cluster_avail: &Vec<u64>| -> u64 {
                let mut t = match c {
                    Some(c) => cluster_avail[c],
                    None => 0,
                };
                for &(p, kind) in &graph.preds[node] {
                    let pc = cluster_of[p].expect("topological order");
                    let extra = match kind {
                        EdgeKind::Data if Some(pc) != c => comm,
                        _ => 0,
                    };
                    t = t.max(finish[p] + extra);
                }
                t
            };

        // Candidates: fresh singleton, or any data-predecessor's cluster whose
        // pin is compatible. Order edges force the predecessor's cluster only
        // through pins (both endpoints share the same pin), so they need no
        // special casing here.
        let mut best: (Option<usize>, u64) = (None, start_in(None, &cluster_of, &cluster_avail));
        for &(p, kind) in &graph.preds[node] {
            if kind != EdgeKind::Data {
                continue;
            }
            let pc = cluster_of[p].unwrap();
            let compatible = match (pin, cluster_pin[pc]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            };
            if !compatible {
                continue;
            }
            let t = start_in(Some(pc), &cluster_of, &cluster_avail);
            if t < best.1 {
                best = (Some(pc), t);
            }
        }
        let (chosen, start) = best;
        let c = match chosen {
            Some(c) => c,
            None => {
                cluster_pin.push(None);
                cluster_avail.push(0);
                cluster_pin.len() - 1
            }
        };
        cluster_of[node] = Some(c);
        if cluster_pin[c].is_none() {
            cluster_pin[c] = pin;
        }
        finish[node] = start + graph.costs[node] as u64;
        cluster_avail[c] = finish[node];
    }

    // Merge clusters that share a pin: all nodes pinned to tile T must end up
    // together anyway, and unifying them here keeps merging simple.
    let mut canonical: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut remap: Vec<usize> = (0..cluster_pin.len()).collect();
    for (c, pin) in cluster_pin.iter().enumerate() {
        if let Some(t) = pin {
            let entry = canonical.entry(t.index() as u32).or_insert(c);
            remap[c] = *entry;
        }
    }
    // Compact ids.
    let mut dense: Vec<Option<usize>> = vec![None; cluster_pin.len()];
    let mut pins = Vec::new();
    let mut sizes = Vec::new();
    let mut of_node = vec![0usize; n];
    for node in 0..n {
        let raw = remap[cluster_of[node].unwrap()];
        let id = *dense[raw].get_or_insert_with(|| {
            pins.push(cluster_pin[raw]);
            sizes.push(0);
            pins.len() - 1
        });
        of_node[node] = id;
        sizes[id] += graph.costs[node] as u64;
        if pins[id].is_none() {
            pins[id] = graph.pins[node];
        }
    }
    let count = pins.len();
    Clustering {
        of_node,
        pins,
        sizes,
        count,
    }
}

/// Merging phase output: bin (partition) per cluster, with per-bin lock.
#[derive(Debug)]
struct Bins {
    of_cluster: Vec<usize>,
    /// `locked[b] = Some(t)`: bin `b` must be placed on tile `t`.
    locked: Vec<Option<TileId>>,
}

/// Load-balance merging into `n_tiles` partitions (paper §4.1 "merging").
///
/// Bins on faulty tiles accept no clusters: pins never name a faulty tile
/// (the data layout interleaves over live tiles only), and unpinned clusters
/// choose the least-loaded *live* bin, so masked bins stay empty end to end.
fn merge(graph: &TaskGraph, clusters: &Clustering, n_tiles: usize, config: &MachineConfig) -> Bins {
    let _ = graph;
    let mut of_cluster = vec![usize::MAX; clusters.count];
    let mut load = vec![0u64; n_tiles];
    let mut locked: Vec<Option<TileId>> = vec![None; n_tiles];
    let live_bins: Vec<usize> = (0..n_tiles)
        .filter(|&b| !config.is_faulty(TileId::from_raw(b as u32)))
        .collect();

    // Pinned clusters claim their tile's bin (bin index = tile index).
    for ((slot, &pin), &size) in of_cluster
        .iter_mut()
        .zip(&clusters.pins)
        .zip(&clusters.sizes)
    {
        if let Some(t) = pin {
            debug_assert!(!config.is_faulty(t), "pin on faulty tile {t:?}");
            *slot = t.index();
            load[t.index()] += size;
            locked[t.index()] = Some(t);
        }
    }
    // Unpinned clusters: decreasing size into the least-loaded live bin.
    let mut order: Vec<usize> = (0..clusters.count)
        .filter(|&c| clusters.pins[c].is_none())
        .collect();
    order.sort_by_key(|&c| std::cmp::Reverse(clusters.sizes[c]));
    for c in order {
        let bin = live_bins
            .iter()
            .copied()
            .min_by_key(|&b| load[b])
            .expect("at least one live tile");
        of_cluster[c] = bin;
        load[bin] += clusters.sizes[c];
    }
    Bins { of_cluster, locked }
}

/// Placement phase: bins → tiles, minimising total communication hops
/// (paper §4.1 "placement") — greedy improving swaps by default, simulated
/// annealing on request.
fn place(
    graph: &TaskGraph,
    clusters: &Clustering,
    bins: &Bins,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> (Vec<TileId>, PlacementLog) {
    use crate::options::PlacementAlgorithm;
    let n_tiles = config.n_tiles() as usize;
    let algorithm = if options.placement_swap {
        options.placement
    } else {
        PlacementAlgorithm::None
    };
    if algorithm == PlacementAlgorithm::None || n_tiles == 1 {
        // Identity assignment (locked bins are already at their tile).
        return (
            (0..n_tiles as u32).map(TileId::from_raw).collect(),
            PlacementLog::default(),
        );
    }

    // Data-edge multiset between bins.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (from, succs) in graph.succs.iter().enumerate() {
        for &(to, kind) in succs {
            if kind != EdgeKind::Data {
                continue;
            }
            let bf = bins.of_cluster[clusters.of_node[from]];
            let bt = bins.of_cluster[clusters.of_node[to]];
            if bf != bt {
                edges.push((bf, bt));
            }
        }
    }
    // Faulty bins are empty but must also stay *out* of the swap set: a
    // zero-delta annealing move could otherwise rotate live code onto a dead
    // tile.
    let swappable: Vec<usize> = (0..n_tiles)
        .filter(|&b| bins.locked[b].is_none() && !config.is_faulty(TileId::from_raw(b as u32)))
        .collect();
    optimize_placement(&edges, &swappable, n_tiles, config, algorithm)
}

/// Aggregated incident-edge adjacency: `adj[b]` lists every bin connected to
/// `b` by at least one data edge (either direction) with the total edge count.
/// Built once per placement; lets a candidate swap be evaluated over only the
/// edges touching the two swapped bins instead of the whole edge multiset.
fn build_adjacency(edges: &[(usize, usize)], n_bins: usize) -> Vec<Vec<(usize, u64)>> {
    let mut w = vec![0u64; n_bins * n_bins];
    for &(a, b) in edges {
        w[a * n_bins + b] += 1;
        w[b * n_bins + a] += 1;
    }
    (0..n_bins)
        .map(|a| {
            (0..n_bins)
                .filter(|&b| w[a * n_bins + b] != 0)
                .map(|b| (b, w[a * n_bins + b]))
                .collect()
        })
        .collect()
}

/// Exact cost change of swapping the tiles of bins `a` and `b`, in O(deg).
///
/// Only edges incident to `a` or `b` can change length, and the `(a, b)` edge
/// itself is invariant (hop distance is symmetric), so the delta is a sum over
/// third-party neighbours of the two bins.
fn swap_delta(
    adj: &[Vec<(usize, u64)>],
    tile_of_bin: &[TileId],
    config: &MachineConfig,
    a: usize,
    b: usize,
) -> i64 {
    let (ta, tb) = (tile_of_bin[a], tile_of_bin[b]);
    let mut delta = 0i64;
    for &(c, w) in &adj[a] {
        if c == b {
            continue;
        }
        let tc = tile_of_bin[c];
        delta += w as i64 * (config.hops(tb, tc) as i64 - config.hops(ta, tc) as i64);
    }
    for &(c, w) in &adj[b] {
        if c == a {
            continue;
        }
        let tc = tile_of_bin[c];
        delta += w as i64 * (config.hops(ta, tc) as i64 - config.hops(tb, tc) as i64);
    }
    delta
}

/// Core placement optimizer over an explicit bin-edge multiset.
///
/// Swap candidates are evaluated incrementally via [`swap_delta`]; because the
/// deltas are exact integers, the accept/reject decisions — including the
/// annealing Metropolis draws — are identical to a full cost recompute, so
/// greedy results are bit-for-bit the same as the original O(E)-per-swap
/// implementation (asserted by the differential tests below).
fn optimize_placement(
    edges: &[(usize, usize)],
    swappable: &[usize],
    n_tiles: usize,
    config: &MachineConfig,
    algorithm: crate::options::PlacementAlgorithm,
) -> (Vec<TileId>, PlacementLog) {
    use crate::options::PlacementAlgorithm;
    let mut tile_of_bin: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
    let initial: i64 = edges
        .iter()
        .map(|&(a, b)| config.hops(tile_of_bin[a], tile_of_bin[b]) as i64)
        .sum();
    let mut log = PlacementLog {
        algorithm: match algorithm {
            PlacementAlgorithm::GreedySwap => "greedy-swap",
            PlacementAlgorithm::Annealing { .. } => "annealing",
            PlacementAlgorithm::None => "identity",
        },
        initial_cost: initial,
        final_cost: initial,
        steps: Vec::new(),
    };
    if swappable.len() < 2 {
        return (tile_of_bin, log);
    }
    let adj = build_adjacency(edges, n_tiles);
    match algorithm {
        PlacementAlgorithm::GreedySwap => {
            let mut step = 0usize;
            for _pass in 0..8 {
                let mut improved = false;
                for i in 0..swappable.len() {
                    for j in i + 1..swappable.len() {
                        let (a, b) = (swappable[i], swappable[j]);
                        let d = swap_delta(&adj, &tile_of_bin, config, a, b);
                        if d < 0 {
                            tile_of_bin.swap(a, b);
                            improved = true;
                            log.steps.push(PlacementStep {
                                step,
                                bins: (a, b),
                                delta: d,
                            });
                            log.final_cost += d;
                        }
                        step += 1;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        PlacementAlgorithm::Annealing { seed } => {
            // Classic swap-move annealing with a geometric cooling schedule.
            // Deterministic (seeded xorshift), so compilation is reproducible.
            // Instead of cloning the assignment at every new best, the accepted
            // swaps are logged and the best-seen prefix replayed at the end.
            let mut rng = seed | 1;
            let mut next = move || {
                rng ^= rng >> 12;
                rng ^= rng << 25;
                rng ^= rng >> 27;
                rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let mut current = initial;
            let mut best_cost = current;
            let mut accepted: Vec<PlacementStep> = Vec::new();
            let mut best_len = 0usize;
            let mut temperature = (initial as f64 / edges.len().max(1) as f64).max(1.0) * 4.0;
            // O(deg) move evaluation funds a deeper search than the original
            // O(E)-per-step loop (200 × swappable) at lower wall-clock; the
            // first 200 × steps replay the original trajectory exactly, so the
            // final cost can only be ≤ the original.
            let steps = 400 * swappable.len().max(4);
            for step in 0..steps {
                let a = swappable[(next() % swappable.len() as u64) as usize];
                let b = swappable[(next() % swappable.len() as u64) as usize];
                if a == b {
                    continue;
                }
                let d = swap_delta(&adj, &tile_of_bin, config, a, b);
                let delta = d as f64;
                // Accept improving moves always; worsening moves with
                // probability exp(-delta / T).
                let accept = delta <= 0.0 || {
                    let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                    u < (-delta / temperature).exp()
                };
                if accept {
                    tile_of_bin.swap(a, b);
                    current += d;
                    accepted.push(PlacementStep {
                        step,
                        bins: (a, b),
                        delta: d,
                    });
                    if current < best_cost {
                        best_cost = current;
                        best_len = accepted.len();
                    }
                }
                temperature = (temperature * 0.995).max(0.01);
            }
            // Replay the prefix of accepted swaps that reached the best cost
            // onto a fresh identity assignment.
            tile_of_bin = (0..n_tiles as u32).map(TileId::from_raw).collect();
            accepted.truncate(best_len);
            for s in &accepted {
                tile_of_bin.swap(s.bins.0, s.bins.1);
            }
            log.steps = accepted;
            log.final_cost = best_cost;
        }
        PlacementAlgorithm::None => unreachable!("handled above"),
    }
    (tile_of_bin, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use raw_ir::builder::ProgramBuilder;
    use raw_ir::{MemHome, Program, Ty};

    fn setup(
        n_tiles: u32,
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (Program, MachineConfig, TaskGraph) {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        b.halt();
        let p = b.finish().unwrap();
        let config = MachineConfig::square(n_tiles);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        (p, config, g)
    }

    #[test]
    fn serial_chain_stays_on_one_tile() {
        // A pure dependence chain has no parallelism: clustering must place it
        // in one cluster, so everything lands on a single tile.
        let (_, config, g) = setup(4, |b| {
            let mut v = b.const_i32(1);
            for _ in 0..10 {
                v = b.add(v, v);
            }
        });
        let part = partition(&g, &config, &CompilerOptions::default());
        let first = part.assignment[0];
        assert!(part.assignment.iter().all(|&t| t == first));
        assert_eq!(part.n_clusters, 1);
    }

    #[test]
    fn independent_chains_spread_across_tiles() {
        // Four long independent chains should use all four tiles.
        let (_, config, g) = setup(4, |b| {
            for _ in 0..4 {
                let mut v = b.const_f32(1.0);
                for _ in 0..12 {
                    v = b.mul_f(v, v);
                }
            }
        });
        let part = partition(&g, &config, &CompilerOptions::default());
        let mut used: Vec<TileId> = part.assignment.clone();
        used.sort();
        used.dedup();
        assert_eq!(used.len(), 4, "chains should occupy all tiles");
        // Each chain must stay on its own tile.
        for chain in 0..4 {
            let base = chain * 13;
            let t = part.assignment[base];
            assert!(part.assignment[base..base + 13].iter().all(|&x| x == t));
        }
    }

    #[test]
    fn pins_are_respected() {
        let (_, config, g) = setup(4, |b| {
            let a = b.array("A", Ty::I32, &[16]);
            for r in 0..4u32 {
                let i = b.const_i32(r as i32);
                let v = b.load(a, i, MemHome::Static(r));
                let w = b.add(v, v);
                b.store(a, i, w, MemHome::Static(r));
            }
        });
        let part = partition(&g, &config, &CompilerOptions::default());
        for (n, inst) in g.insts.iter().enumerate() {
            if let Some(pin) = g.pins[n] {
                assert_eq!(part.assignment[n], pin, "node {n} ({inst:?})");
            }
        }
    }

    #[test]
    fn clustering_ablation_still_respects_pins() {
        let (_, config, g) = setup(2, |b| {
            let v = b.var_i32("v", 3);
            let r = b.read_var(v);
            let s = b.add(r, r);
            b.write_var(v, s);
        });
        let options = CompilerOptions {
            clustering: false,
            ..Default::default()
        };
        let part = partition(&g, &config, &options);
        for n in 0..g.len() {
            if let Some(pin) = g.pins[n] {
                assert_eq!(part.assignment[n], pin);
            }
        }
    }

    #[test]
    fn annealing_placement_is_deterministic_and_correct() {
        use crate::options::PlacementAlgorithm;
        let (_, config, g) = setup(8, |b| {
            for _ in 0..8 {
                let mut v = b.const_f32(1.0);
                for _ in 0..6 {
                    v = b.mul_f(v, v);
                }
            }
        });
        let options = CompilerOptions {
            placement: PlacementAlgorithm::Annealing { seed: 7 },
            ..Default::default()
        };
        let p1 = partition(&g, &config, &options);
        let p2 = partition(&g, &config, &options);
        assert_eq!(
            p1.assignment, p2.assignment,
            "annealing must be seeded-deterministic"
        );
        // Pins (none here) and node coverage still hold.
        assert_eq!(p1.assignment.len(), g.len());
    }

    #[test]
    fn annealing_respects_pins() {
        use crate::options::PlacementAlgorithm;
        let (_, config, g) = setup(4, |b| {
            let a = b.array("A", Ty::I32, &[16]);
            for r in 0..4u32 {
                let i = b.const_i32(r as i32);
                let v = b.load(a, i, MemHome::Static(r));
                let w = b.add(v, v);
                b.store(a, i, w, MemHome::Static(r));
            }
        });
        let options = CompilerOptions {
            placement: PlacementAlgorithm::Annealing { seed: 3 },
            ..Default::default()
        };
        let part = partition(&g, &config, &options);
        for n in 0..g.len() {
            if let Some(pin) = g.pins[n] {
                assert_eq!(part.assignment[n], pin);
            }
        }
    }

    /// Total communication cost by full recompute (test oracle).
    fn full_cost(edges: &[(usize, usize)], tile_of_bin: &[TileId], config: &MachineConfig) -> u64 {
        edges
            .iter()
            .map(|&(a, b)| config.hops(tile_of_bin[a], tile_of_bin[b]) as u64)
            .sum()
    }

    /// The original greedy placement: full O(E) cost recompute per candidate
    /// swap. Kept as the reference for the incremental implementation.
    fn reference_greedy(
        edges: &[(usize, usize)],
        swappable: &[usize],
        n_tiles: usize,
        config: &MachineConfig,
    ) -> Vec<TileId> {
        let mut tile_of_bin: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
        let mut current = full_cost(edges, &tile_of_bin, config);
        for _pass in 0..8 {
            let mut improved = false;
            for i in 0..swappable.len() {
                for j in i + 1..swappable.len() {
                    let (a, b) = (swappable[i], swappable[j]);
                    tile_of_bin.swap(a, b);
                    let c = full_cost(edges, &tile_of_bin, config);
                    if c < current {
                        current = c;
                        improved = true;
                    } else {
                        tile_of_bin.swap(a, b);
                    }
                }
            }
            if !improved {
                break;
            }
        }
        tile_of_bin
    }

    /// The original annealing placement: 200 × steps, full cost recompute per
    /// move, assignment clone per new best.
    fn reference_annealing(
        edges: &[(usize, usize)],
        swappable: &[usize],
        n_tiles: usize,
        config: &MachineConfig,
        seed: u64,
    ) -> Vec<TileId> {
        let mut tile_of_bin: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut current = full_cost(edges, &tile_of_bin, config) as f64;
        let mut best = tile_of_bin.clone();
        let mut best_cost = current;
        let mut temperature = (current / edges.len().max(1) as f64).max(1.0) * 4.0;
        let steps = 200 * swappable.len().max(4);
        for _ in 0..steps {
            let a = swappable[(next() % swappable.len() as u64) as usize];
            let b = swappable[(next() % swappable.len() as u64) as usize];
            if a == b {
                continue;
            }
            tile_of_bin.swap(a, b);
            let c = full_cost(edges, &tile_of_bin, config) as f64;
            let delta = c - current;
            let accept = delta <= 0.0 || {
                let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                u < (-delta / temperature).exp()
            };
            if accept {
                current = c;
                if c < best_cost {
                    best_cost = c;
                    best = tile_of_bin.clone();
                }
            } else {
                tile_of_bin.swap(a, b);
            }
            temperature = (temperature * 0.995).max(0.01);
        }
        best
    }

    /// Deterministic synthetic bin-edge multisets of varying density.
    fn synthetic_edges(n_bins: usize, n_edges: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut edges = Vec::with_capacity(n_edges);
        while edges.len() < n_edges {
            let a = (next() % n_bins as u64) as usize;
            let b = (next() % n_bins as u64) as usize;
            if a != b {
                edges.push((a, b));
            }
        }
        edges
    }

    #[test]
    fn incremental_greedy_matches_full_recompute_reference() {
        // The Δ-cost greedy must make exactly the same accept decisions as the
        // original full-recompute greedy: identical assignments, not just
        // identical cost.
        for (rows, cols, n_edges, seed) in [
            (2u32, 2u32, 6usize, 1u64),
            (2, 4, 20, 2),
            (4, 4, 60, 3),
            (4, 4, 200, 4),
            (1, 8, 30, 5),
        ] {
            let config = MachineConfig::grid(rows, cols);
            let n_tiles = (rows * cols) as usize;
            let edges = synthetic_edges(n_tiles, n_edges, seed);
            for swappable in [
                (0..n_tiles).collect::<Vec<_>>(),
                (0..n_tiles).skip(1).collect(),
                (0..n_tiles).step_by(2).collect(),
            ] {
                let (new, log) = optimize_placement(
                    &edges,
                    &swappable,
                    n_tiles,
                    &config,
                    crate::options::PlacementAlgorithm::GreedySwap,
                );
                let old = reference_greedy(&edges, &swappable, n_tiles, &config);
                assert_eq!(new, old, "grid {rows}x{cols} seed {seed}");
                // Replaying the logged swaps onto identity must reproduce the
                // final assignment, and the logged cost must be exact.
                let mut replay: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
                for s in &log.steps {
                    replay.swap(s.bins.0, s.bins.1);
                }
                assert_eq!(replay, new, "placement log replay");
                assert_eq!(log.final_cost as u64, full_cost(&edges, &new, &config));
            }
        }
    }

    #[test]
    fn incremental_annealing_cost_not_worse_than_reference() {
        // The incremental annealer replays the reference trajectory for its
        // first 200 × steps and then keeps searching, so its final cost must
        // be ≤ the reference on every input.
        for (rows, cols, n_edges, seed) in [
            (2u32, 2u32, 10usize, 11u64),
            (2, 4, 40, 12),
            (4, 4, 120, 13),
            (4, 4, 300, 14),
        ] {
            let config = MachineConfig::grid(rows, cols);
            let n_tiles = (rows * cols) as usize;
            let edges = synthetic_edges(n_tiles, n_edges, seed);
            let swappable: Vec<usize> = (0..n_tiles).collect();
            for anneal_seed in [1u64, 7, 42] {
                let (new, log) = optimize_placement(
                    &edges,
                    &swappable,
                    n_tiles,
                    &config,
                    crate::options::PlacementAlgorithm::Annealing { seed: anneal_seed },
                );
                let old = reference_annealing(&edges, &swappable, n_tiles, &config, anneal_seed);
                assert!(
                    full_cost(&edges, &new, &config) <= full_cost(&edges, &old, &config),
                    "grid {rows}x{cols} edges-seed {seed} anneal-seed {anneal_seed}"
                );
                let mut replay: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
                for s in &log.steps {
                    replay.swap(s.bins.0, s.bins.1);
                }
                assert_eq!(replay, new, "annealing log replay");
                assert_eq!(log.final_cost as u64, full_cost(&edges, &new, &config));
            }
        }
    }

    #[test]
    fn swap_delta_agrees_with_full_recompute() {
        let config = MachineConfig::grid(4, 4);
        let n_tiles = 16;
        let edges = synthetic_edges(n_tiles, 100, 99);
        let adj = build_adjacency(&edges, n_tiles);
        let mut tile_of_bin: Vec<TileId> = (0..n_tiles as u32).map(TileId::from_raw).collect();
        // Scramble, then check every pair.
        tile_of_bin.swap(0, 9);
        tile_of_bin.swap(3, 12);
        for a in 0..n_tiles {
            for b in a + 1..n_tiles {
                let before = full_cost(&edges, &tile_of_bin, &config) as i64;
                let d = swap_delta(&adj, &tile_of_bin, &config, a, b);
                tile_of_bin.swap(a, b);
                let after = full_cost(&edges, &tile_of_bin, &config) as i64;
                tile_of_bin.swap(a, b);
                assert_eq!(d, after - before, "swap ({a}, {b})");
            }
        }
    }

    #[test]
    fn faulty_tiles_receive_no_nodes() {
        use crate::options::PlacementAlgorithm;
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", Ty::I32, &[16]);
        for r in 0..4u32 {
            let i = b.const_i32(r as i32);
            let v = b.load(a, i, MemHome::Static(r));
            let w = b.add(v, v);
            b.store(a, i, w, MemHome::Static(r));
        }
        for _ in 0..6 {
            let mut v = b.const_f32(1.0);
            for _ in 0..8 {
                v = b.mul_f(v, v);
            }
        }
        b.halt();
        let p = b.finish().unwrap();
        let base = MachineConfig::grid(2, 4);
        let mask = base.mask_to_pow2(&[TileId::from_raw(1), TileId::from_raw(4)]);
        let config = base.with_faulty(mask);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        for algorithm in [
            PlacementAlgorithm::GreedySwap,
            PlacementAlgorithm::Annealing { seed: 5 },
        ] {
            let options = CompilerOptions {
                placement: algorithm,
                ..Default::default()
            };
            let part = partition(&g, &config, &options);
            for (n, &t) in part.assignment.iter().enumerate() {
                assert!(!config.is_faulty(t), "node {n} placed on faulty tile {t:?}");
            }
            for (n, pin) in g.pins.iter().enumerate() {
                if let Some(pin) = pin {
                    assert_eq!(part.assignment[n], *pin);
                }
            }
        }
    }

    #[test]
    fn empty_block_partitions_empty() {
        let (_, config, g) = setup(2, |_| {});
        let part = partition(&g, &config, &CompilerOptions::default());
        assert!(part.assignment.is_empty());
    }

    #[test]
    fn single_tile_everything_on_tile_zero() {
        let (_, config, g) = setup(1, |b| {
            let x = b.const_i32(1);
            let y = b.add(x, x);
            let _ = b.mul(y, y);
        });
        let part = partition(&g, &config, &CompilerOptions::default());
        assert!(part.assignment.iter().all(|&t| t == TileId::from_raw(0)));
    }
}

//! The per-basic-block task graph (paper §3.3 "task graph builder").
//!
//! Nodes are three-operand instructions labelled with their estimated cost;
//! edges are either **data** edges (one word must flow from producer to
//! consumer — across the static network if they land on different tiles) or
//! **order** edges (memory/variable serialization with no value transfer).
//!
//! Order edges are constructed so that both endpoints are always *pinned to
//! the same tile* (same variable home, same element-residue home, or the same
//! dynamic-array issue tile), which means serialization never requires
//! cross-tile synchronization — the property that makes the conservative
//! dependence handling of paper §5.1 sound in a distributed schedule.

use crate::layout::{ArrayClass, DataLayout};
use raw_ir::{Block, Inst, InstKind, MemHome, ValueId};
use raw_machine::{MachineConfig, TileId};
use std::collections::HashMap;

/// Index of a node (instruction) within a block's task graph.
pub type NodeId = usize;

/// Kind of a task-graph edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// One word flows from producer to consumer.
    Data,
    /// Serialization only; endpoints are guaranteed co-located.
    Order,
}

/// The task graph of one basic block.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// The block's instructions (node `i` is `insts[i]`).
    pub insts: Vec<Inst>,
    /// Estimated execution cost per node (paper: node labels).
    pub costs: Vec<u32>,
    /// Successor adjacency: `(succ, kind)`.
    pub succs: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Predecessor adjacency: `(pred, kind)`.
    pub preds: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Tile pin per node (`None` = free to place anywhere).
    pub pins: Vec<Option<TileId>>,
    /// Extra issue slots the node needs beyond its own instruction (address
    /// arithmetic emitted by instruction selection for memory accesses).
    pub extra_slots: Vec<u32>,
    /// Defining node of each block-local value.
    pub def_of: HashMap<ValueId, NodeId>,
}

impl TaskGraph {
    /// Builds the task graph for `block`.
    pub fn build(block: &Block, layout: &DataLayout, config: &MachineConfig) -> TaskGraph {
        let n = block.insts.len();
        let mut g = TaskGraph {
            insts: block.insts.to_vec(),
            costs: Vec::with_capacity(n),
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            pins: vec![None; n],
            extra_slots: vec![0; n],
            def_of: HashMap::new(),
        };

        // Costs, pins, and instruction-selection slot counts.
        for (i, inst) in block.insts.iter().enumerate() {
            g.costs.push(estimate_cost(inst, layout, config));
            g.pins[i] = pin_of(inst, layout);
            g.extra_slots[i] = extra_slots_of(inst, layout);
            if let Some(dst) = inst.dst {
                g.def_of.insert(dst, i);
            }
        }

        // Data edges (def → use within the block).
        for (i, inst) in block.insts.iter().enumerate() {
            for src in inst.sources() {
                if let Some(&d) = g.def_of.get(&src) {
                    g.add_edge(d, i, EdgeKind::Data);
                }
            }
        }

        // Variable serialization: every ReadVar(v) precedes the WriteVar(v).
        let mut reads_of: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for (i, inst) in block.insts.iter().enumerate() {
            match inst.kind {
                InstKind::ReadVar(v) => reads_of.entry(v.index() as u32).or_default().push(i),
                InstKind::WriteVar(v, _) => {
                    if let Some(reads) = reads_of.get(&(v.index() as u32)) {
                        for &r in reads {
                            g.add_edge(r, i, EdgeKind::Order);
                        }
                    }
                }
                _ => {}
            }
        }

        // Memory serialization.
        g.add_memory_order_edges(block, layout);
        g
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        if from == to {
            return;
        }
        if self.succs[from].iter().any(|&(s, _)| s == to) {
            return;
        }
        self.succs[from].push((to, kind));
        self.preds[to].push((from, kind));
    }

    fn add_memory_order_edges(&mut self, block: &Block, layout: &DataLayout) {
        // Static arrays: dependences exist only between references with the
        // same home residue (references to different residues touch different
        // elements). Within a residue group, apply load/store ordering.
        // Dynamic arrays: chain every reference in program order.
        #[derive(Default)]
        struct Group {
            last_store: Option<NodeId>,
            loads_since: Vec<NodeId>,
        }
        let mut static_groups: HashMap<(u32, u32), Group> = HashMap::new();
        let mut dyn_last: HashMap<u32, NodeId> = HashMap::new();

        for (i, inst) in block.insts.iter().enumerate() {
            let (array, home, is_store) = match inst.kind {
                InstKind::Load { array, home, .. } => (array, home, false),
                InstKind::Store { array, home, .. } => (array, home, true),
                _ => continue,
            };
            match layout.class(array) {
                ArrayClass::Dynamic { .. } => {
                    let key = array.index() as u32;
                    if let Some(&prev) = dyn_last.get(&key) {
                        self.add_edge(prev, i, EdgeKind::Order);
                    }
                    dyn_last.insert(key, i);
                }
                ArrayClass::Static => {
                    let residue = match home {
                        MemHome::Static(r) => r % layout.n_tiles,
                        MemHome::Dynamic => unreachable!("static array with dynamic ref"),
                    };
                    let group = static_groups
                        .entry((array.index() as u32, residue))
                        .or_default();
                    if is_store {
                        if let Some(s) = group.last_store {
                            self.add_edge(s, i, EdgeKind::Order);
                        }
                        for &l in &group.loads_since {
                            self.add_edge(l, i, EdgeKind::Order);
                        }
                        group.last_store = Some(i);
                        group.loads_since.clear();
                    } else {
                        if let Some(s) = group.last_store {
                            self.add_edge(s, i, EdgeKind::Order);
                        }
                        group.loads_since.push(i);
                    }
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Nodes in a topological order (program order is one, since edges only
    /// ever point forward).
    pub fn topo_order(&self) -> impl Iterator<Item = NodeId> {
        0..self.len()
    }

    /// Checks the co-location guarantee: every order edge joins two nodes with
    /// identical pins. Used by debug assertions and tests.
    pub fn order_edges_colocated(&self) -> bool {
        self.succs.iter().enumerate().all(|(from, ss)| {
            ss.iter()
                .filter(|(_, k)| *k == EdgeKind::Order)
                .all(|&(to, _)| self.pins[from].is_some() && self.pins[from] == self.pins[to])
        })
    }
}

/// Estimated cost of an instruction (task-graph node label).
fn estimate_cost(inst: &Inst, layout: &DataLayout, config: &MachineConfig) -> u32 {
    use raw_machine::LatencyModel;
    let dyn_cost = |_array| {
        // Round trip: inject + ~diameter hops each way + handler service.
        let diameter = config.rows + config.cols;
        4 + 2 * config.mem_latency + 2 * diameter
    };
    match &inst.kind {
        InstKind::Load { array, .. } | InstKind::Store { array, .. } => {
            match layout.class(*array) {
                ArrayClass::Dynamic { .. } => dyn_cost(array),
                ArrayClass::Static => {
                    if matches!(inst.kind, InstKind::Load { .. }) {
                        config.mem_latency
                    } else {
                        1
                    }
                }
            }
        }
        _ => match config.latency {
            LatencyModel::Table1 => inst.cost(config.mem_latency),
            LatencyModel::Unit => match inst.kind {
                InstKind::ReadVar(_) => config.mem_latency,
                _ => 1,
            },
        },
    }
}

/// Issue slots instruction selection adds before the operation itself:
/// interleaved-address arithmetic for array accesses (one shift for static
/// references on multi-tile machines, one add for dynamic references).
fn extra_slots_of(inst: &Inst, layout: &DataLayout) -> u32 {
    match inst.kind {
        InstKind::Load { array, .. } | InstKind::Store { array, .. } => match layout.class(array) {
            ArrayClass::Dynamic { .. } => 1,
            ArrayClass::Static => u32::from(layout.tile_shift() > 0),
        },
        _ => 0,
    }
}

/// The tile a node must execute on, if constrained.
fn pin_of(inst: &Inst, layout: &DataLayout) -> Option<TileId> {
    match inst.kind {
        InstKind::ReadVar(v) | InstKind::WriteVar(v, _) => Some(layout.var_home(v)),
        InstKind::Load { array, home, .. } | InstKind::Store { array, home, .. } => {
            match layout.class(array) {
                ArrayClass::Dynamic { issue_tile } => Some(issue_tile),
                ArrayClass::Static => match home {
                    // The residue is a slot index; pin to the physical tile
                    // hosting that slot (identity when no tiles are masked).
                    MemHome::Static(r) => Some(layout.element_home(r)),
                    MemHome::Dynamic => unreachable!("static array with dynamic ref"),
                },
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::builder::ProgramBuilder;
    use raw_ir::{Program, Ty};

    fn graph_for(build: impl FnOnce(&mut ProgramBuilder), n_tiles: u32) -> (Program, TaskGraph) {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        b.halt();
        let p = b.finish().unwrap();
        let config = MachineConfig::square(n_tiles);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        (p, g)
    }

    #[test]
    fn data_edges_follow_dataflow() {
        let (_, g) = graph_for(
            |b| {
                let x = b.const_i32(1);
                let y = b.const_i32(2);
                let s = b.add(x, y);
                let _t = b.mul(s, s);
            },
            4,
        );
        assert_eq!(g.len(), 4);
        assert!(g.succs[0].contains(&(2, EdgeKind::Data)));
        assert!(g.succs[1].contains(&(2, EdgeKind::Data)));
        // s used twice by node 3, but the edge is recorded once.
        assert_eq!(g.succs[2], vec![(3, EdgeKind::Data)]);
        assert!(g.preds[3].len() == 1);
    }

    #[test]
    fn var_read_write_serialized_and_pinned() {
        let (p, g) = graph_for(
            |b| {
                let v = b.var_i32("v", 0);
                let r = b.read_var(v);
                let one = b.const_i32(1);
                let s = b.add(r, one);
                b.write_var(v, s);
            },
            4,
        );
        let v = p.var_by_name("v").unwrap();
        assert_eq!(v.index(), 0);
        // read (node 0) → write (node 3) order edge.
        assert!(g.succs[0].contains(&(3, EdgeKind::Order)));
        assert_eq!(g.pins[0], Some(TileId::from_raw(0)));
        assert_eq!(g.pins[3], Some(TileId::from_raw(0)));
        assert!(g.order_edges_colocated());
    }

    #[test]
    fn static_memory_same_residue_ordered_distinct_residue_free() {
        let (_, g) = graph_for(
            |b| {
                let a = b.array("A", Ty::I32, &[8]);
                let i0 = b.const_i32(0);
                let i4 = b.const_i32(4);
                let i1 = b.const_i32(1);
                let v = b.const_i32(9);
                b.store(a, i0, v, MemHome::Static(0)); // node 4
                let _l0 = b.load(a, i4, MemHome::Static(0)); // node 5: residue 0 too
                let _l1 = b.load(a, i1, MemHome::Static(1)); // node 6: residue 1
                b.store(a, i0, v, MemHome::Static(0)); // node 7
            },
            4,
        );
        // store(0) → load residue 0.
        assert!(g.succs[4].contains(&(5, EdgeKind::Order)));
        // no edge to the residue-1 load.
        assert!(!g.succs[4].iter().any(|&(s, _)| s == 6));
        // both store(0) and load(0) → second store.
        assert!(g.succs[4].contains(&(7, EdgeKind::Order)));
        assert!(g.succs[5].contains(&(7, EdgeKind::Order)));
        assert!(g.order_edges_colocated());
        // Pins follow residues.
        assert_eq!(g.pins[5], Some(TileId::from_raw(0)));
        assert_eq!(g.pins[6], Some(TileId::from_raw(1)));
    }

    #[test]
    fn dynamic_array_chained_and_pinned_to_one_tile() {
        let (p, g) = graph_for(
            |b| {
                let a = b.array("A", Ty::I32, &[8]);
                let i0 = b.const_i32(0);
                let i1 = b.const_i32(1);
                let l0 = b.load(a, i0, MemHome::Dynamic); // node 2
                let _l1 = b.load(a, i1, MemHome::Dynamic); // node 3
                b.store(a, i1, l0, MemHome::Dynamic); // node 4
            },
            4,
        );
        let _ = p;
        assert!(g.succs[2].contains(&(3, EdgeKind::Order)));
        assert!(g.succs[3].contains(&(4, EdgeKind::Order)));
        assert!(g.pins[2].is_some());
        assert_eq!(g.pins[2], g.pins[3]);
        assert_eq!(g.pins[3], g.pins[4]);
        assert!(g.order_edges_colocated());
    }

    #[test]
    fn costs_use_latency_table() {
        let (_, g) = graph_for(
            |b| {
                let x = b.const_f32(1.0);
                let y = b.mul_f(x, x);
                let four = b.const_i32(4);
                let two = b.const_i32(2);
                let _z = b.div(four, two);
                let _ = y;
            },
            2,
        );
        assert_eq!(g.costs[0], 1); // const
        assert_eq!(g.costs[1], 4); // mulf
        assert_eq!(g.costs[4], 35); // div
    }
}

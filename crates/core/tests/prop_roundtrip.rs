//! Property tests for the compiler driver: randomly parameterised kernels,
//! compiled and simulated at several machine sizes, must match the reference
//! interpreter bit-for-bit (the paper's central invariant, exercised directly
//! against the `rawcc` crate).

use raw_ir::interp::Interpreter;
use raw_machine::MachineConfig;
use raw_testkit::prelude::*;
use rawcc::{compile, CompilerOptions};

raw_testkit::proptest! {
    #![cases(12)]
    /// Random affine fill+reduce kernels survive space-time scheduling.
    #[test]
    fn compiled_random_kernels_match_interpreter(
        trip in 2i64..10,
        k in 1i64..5,
        n_idx in 0usize..3,
    ) {
        let n = [1u32, 2, 4][n_idx];
        let src = format!(
            "int i; int s; int A[{trip}];
             for (i = 0; i < {trip}; i = i + 1) A[i] = {k}*i + 1;
             for (i = 0; i < {trip}; i = i + 1) s = s + A[i];"
        );
        let program = raw_lang::compile_source("prop-kernel", &src, n).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();
        let config = MachineConfig::square(n);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (result, report) = compiled.run(&program).unwrap();
        prop_assert!(result.state_eq(&golden), "diverged at {} tiles", n);
        prop_assert!(report.cycles > 0);
    }

    /// Register pressure: tight and abundant budgets agree.
    #[test]
    fn register_budgets_agree_on_loops(trip in 2i64..8, gprs_idx in 0usize..3) {
        let gprs = [4u32, 8, 32][gprs_idx];
        let src = format!(
            "int i; int s;
             for (i = 0; i < {trip}; i = i + 1) s = s + i*i + 3*i + 1;"
        );
        let program = raw_lang::compile_source("prop-pressure", &src, 2).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();
        let mut config = MachineConfig::square(2);
        config.gprs = gprs;
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        prop_assert!(result.state_eq(&golden), "diverged with {} registers", gprs);
    }
}

//! Robustness tests for the on-disk block-cache layer: corrupt, truncated,
//! stale-version, and mis-keyed entries must be detected, ignored, and
//! rewritten — never panic, never wrong output. Plus the cache-hit-equals-
//! fresh-compile property that underwrites every hit the compiler serves.

use raw_machine::MachineConfig;
use raw_testkit::hash64;
use raw_testkit::prelude::*;
use rawcc::blockcache::canonical_block_bytes;
use rawcc::{
    compile_block, compile_with_cache, BlockCache, CompilerOptions, DataLayout, KeyContext,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rawcc-robust-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small multi-block program (loop ⇒ header/body/exit blocks).
fn sample_program() -> raw_ir::Program {
    raw_lang::compile_source(
        "robust",
        "int i; int s; int A[6];
         for (i = 0; i < 6; i = i + 1) A[i] = 2*i + 1;
         for (i = 0; i < 6; i = i + 1) s = s + A[i];",
        2,
    )
    .unwrap()
}

/// Entry byte layout (see blockcache.rs): magic 0..8, version 8..12,
/// key 12..28, payload length 28..36, checksum 36..44, payload 44.. .
const OFF_VERSION: usize = 8;
const OFF_KEY: usize = 12;
const OFF_PAYLOAD: usize = 44;

/// Compiles into a disk cache, mutates every on-disk entry with `corrupt`,
/// then asserts a fresh cache over the same directory (verify mode on) still
/// produces identical output, counts a reject per entry, and rewrites the
/// entries so a third pass is 100% hits again.
fn check_corruption(tag: &str, corrupt: impl Fn(&mut Vec<u8>)) {
    let program = sample_program();
    let config = MachineConfig::square(2);
    let options = CompilerOptions::default();
    let dir = unique_dir(tag);

    let reference = {
        let cache = BlockCache::with_disk(&dir).unwrap();
        compile_with_cache(&program, &config, &options, &cache).unwrap()
    };

    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rbc"))
        .collect();
    assert_eq!(
        entries.len(),
        program.blocks.len(),
        "{tag}: one disk entry per block"
    );
    for path in &entries {
        let mut bytes = std::fs::read(path).unwrap();
        corrupt(&mut bytes);
        std::fs::write(path, &bytes).unwrap();
    }

    // Corrupt entries: rejected, recompiled, output identical, rewritten.
    {
        let mut cache = BlockCache::with_disk(&dir).unwrap();
        cache.set_verify(true);
        let compiled = compile_with_cache(&program, &config, &options, &cache).unwrap();
        assert_eq!(
            compiled.machine_program, reference.machine_program,
            "{tag}: corrupt cache changed output"
        );
        assert_eq!(
            cache.disk_rejects(),
            entries.len() as u64,
            "{tag}: every corrupt entry should be rejected"
        );
        assert_eq!(
            compiled.report.cache.hits, 0,
            "{tag}: a corrupt entry was served as a hit"
        );
    }

    // The miss path rewrote the entries: a third pass hits everything.
    {
        let cache = BlockCache::with_disk(&dir).unwrap();
        let compiled = compile_with_cache(&program, &config, &options, &cache).unwrap();
        assert_eq!(compiled.machine_program, reference.machine_program);
        assert_eq!(
            compiled.report.cache.misses, 0,
            "{tag}: entries not rewritten"
        );
        assert_eq!(
            cache.disk_rejects(),
            0,
            "{tag}: rewritten entries are valid"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entries_are_rejected_and_rewritten() {
    check_corruption("trunc", |bytes| bytes.truncate(bytes.len() / 2));
}

#[test]
fn emptied_entries_are_rejected_and_rewritten() {
    check_corruption("empty", |bytes| bytes.clear());
}

#[test]
fn bitflipped_payloads_are_rejected_and_rewritten() {
    check_corruption("flip", |bytes| bytes[OFF_PAYLOAD] ^= 0x40);
}

#[test]
fn wrong_version_entries_are_rejected_and_rewritten() {
    check_corruption("version", |bytes| {
        bytes[OFF_VERSION] = bytes[OFF_VERSION].wrapping_add(1)
    });
}

#[test]
fn mis_keyed_entries_are_rejected_and_rewritten() {
    // Stored key disagrees with the file's content address — e.g. a file
    // renamed or synced into the wrong slot.
    check_corruption("key", |bytes| bytes[OFF_KEY] ^= 0xFF);
}

#[test]
fn trailing_garbage_is_rejected_and_rewritten() {
    check_corruption("trail", |bytes| bytes.extend_from_slice(b"garbage"));
}

#[test]
fn with_disk_under_a_file_fails() {
    let file = unique_dir("notadir");
    std::fs::write(&file, b"occupied").unwrap();
    let err = BlockCache::with_disk(file.join("cache"));
    assert!(err.is_err(), "with_disk under a regular file must fail");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn unusable_cache_dir_falls_back_to_in_memory() {
    // `from_env` is exercised indirectly: the fallback it relies on is
    // "with_disk fails ⇒ in-memory cache still compiles correctly".
    let file = unique_dir("fallback");
    std::fs::write(&file, b"occupied").unwrap();
    assert!(BlockCache::with_disk(file.join("cache")).is_err());
    let program = sample_program();
    let config = MachineConfig::square(2);
    let options = CompilerOptions::default();
    let mem = compile_with_cache(&program, &config, &options, &BlockCache::in_memory()).unwrap();
    assert!(!mem.machine_program.tiles.is_empty());
    let _ = std::fs::remove_file(&file);
}

raw_testkit::proptest! {
    #![cases(10)]
    /// A cache hit returns a bundle equal to a fresh `compile_block` of the
    /// same block — the property every served hit rests on.
    #[test]
    fn cache_hit_equals_fresh_compile(trip in 2i64..9, k in 1i64..4) {
        let src = format!(
            "int i; int s;
             for (i = 0; i < {trip}; i = i + 1) s = s + {k}*i + 2;"
        );
        let program = raw_lang::compile_source("prop-hit", &src, 2).unwrap();
        let config = MachineConfig::square(2);
        let options = CompilerOptions::default();
        let cache = BlockCache::in_memory();
        compile_with_cache(&program, &config, &options, &cache).unwrap();

        let layout = DataLayout::build(&program, &config);
        let key_ctx = KeyContext::new(&layout, &config, &options);
        for block in &program.blocks {
            let bytes = canonical_block_bytes(block);
            let (hit, _) = cache.get(&key_ctx.key(&bytes));
            let hit = hit.expect("every block was just compiled into the cache");
            let (fresh, _) = compile_block(block, &layout, &config, &options, hash64(&bytes));
            prop_assert!(*hit == fresh, "cached bundle diverged from fresh compile");
        }
    }
}

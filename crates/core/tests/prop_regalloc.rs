//! Spill-path property tests: drive register pressure well past the physical
//! file on deliberately small configurations and check the allocator's three
//! obligations — spills actually happen, every emitted register is inside the
//! physical file, and the spilled program still matches the reference
//! interpreter bit-for-bit.

use raw_ir::interp::Interpreter;
use raw_machine::isa::{Dst, Src};
use raw_machine::MachineConfig;
use raw_testkit::prelude::*;
use rawcc::{compile, CompilerOptions};

/// A loop body whose expression tree has `nterms` independent products summed
/// together — the scheduler interleaves them, so ~`nterms` temporaries are
/// simultaneously live and a small register file must spill.
fn pressure_source(trip: i64, nterms: usize) -> String {
    let sum = (0..nterms)
        .map(|j| format!("(i + {})*(i + {})", j + 1, j + nterms + 1))
        .collect::<Vec<_>>()
        .join(" + ");
    format!("int i; int s; for (i = 0; i < {trip}; i = i + 1) s = s + {sum};")
}

raw_testkit::proptest! {
    #![cases(10)]
    /// Pressure past the file on a 1-tile machine: spills occur, all register
    /// operands stay inside the file, and results match the interpreter.
    #[test]
    fn spilled_programs_stay_correct(trip in 2i64..6, nterms in 10usize..18, gprs_idx in 0usize..2) {
        let gprs = [5u32, 8][gprs_idx];
        let src = pressure_source(trip, nterms);
        let program = raw_lang::compile_source("prop-spill", &src, 1).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();

        let mut config = MachineConfig::square(1);
        config.gprs = gprs;
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();

        let spills: usize = compiled.report.blocks.iter().map(|b| b.spills).sum();
        prop_assert!(
            spills > 0,
            "{nterms} live products vs {gprs} registers must spill"
        );

        for (t, tile) in compiled.machine_program.tiles.iter().enumerate() {
            for inst in &tile.proc {
                if let Some(Dst::Reg(r)) = inst.dst() {
                    prop_assert!((r as u32) < gprs, "tile {t}: dst r{r} outside {gprs}-reg file");
                }
                for s in inst.sources() {
                    if let Src::Reg(r) = s {
                        prop_assert!((r as u32) < gprs, "tile {t}: src r{r} outside {gprs}-reg file");
                    }
                }
            }
        }

        let (result, report) = compiled.run(&program).unwrap();
        prop_assert!(result.state_eq(&golden), "spilled program diverged from interpreter");
        prop_assert!(report.cycles > 0);
    }

    /// The same pressure spread over a 4-tile mesh: per-tile pressure is lower
    /// but communication liveness adds its own; same three obligations.
    #[test]
    fn spilled_parallel_programs_stay_correct(trip in 2i64..5, nterms in 12usize..18) {
        let gprs = 5u32;
        let src = pressure_source(trip, nterms);
        let program = raw_lang::compile_source("prop-spill-mesh", &src, 4).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();

        let mut config = MachineConfig::square(4);
        config.gprs = gprs;
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();

        for (t, tile) in compiled.machine_program.tiles.iter().enumerate() {
            for inst in &tile.proc {
                if let Some(Dst::Reg(r)) = inst.dst() {
                    prop_assert!((r as u32) < gprs, "tile {t}: dst r{r} outside {gprs}-reg file");
                }
                for s in inst.sources() {
                    if let Src::Reg(r) = s {
                        prop_assert!((r as u32) < gprs, "tile {t}: src r{r} outside {gprs}-reg file");
                    }
                }
            }
        }

        let (result, _) = compiled.run(&program).unwrap();
        prop_assert!(result.state_eq(&golden), "spilled mesh program diverged from interpreter");
    }
}

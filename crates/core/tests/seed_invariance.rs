//! Regression tests for per-block RNG seeding: the annealer's seed is derived
//! from the *content* of each block (global seed ⊕ block hash through
//! splitmix64), not from the block's position in the program. Deleting or
//! reordering an unrelated block must therefore leave every other block's
//! placement — accepted-swap log, tile assignment, makespan — unchanged.

use raw_ir::builder::ProgramBuilder;
use raw_ir::{Program, VarId};
use raw_machine::MachineConfig;
use rawcc::{
    compile_with_cache, BlockCache, BlockReport, CompiledProgram, CompilerOptions,
    PlacementAlgorithm,
};
use std::collections::BTreeMap;

fn decls(b: &mut ProgramBuilder) -> (VarId, VarId, VarId) {
    (b.var_i32("sx", 3), b.var_i32("sy", 5), b.var_i32("sz", 7))
}

/// A wide expression tree (enough parallelism that annealing makes real
/// choices) folding into `var`; `salt` differentiates block contents.
fn emit_body(b: &mut ProgramBuilder, var: VarId, salt: i32) {
    let base = b.read_var(var);
    let mut acc = base;
    for i in 0..6 {
        let c1 = b.const_i32(salt + i);
        let c2 = b.const_i32(2 * salt + i + 1);
        let t1 = b.add(base, c1);
        let t2 = b.mul(t1, c2);
        acc = b.add(acc, t2);
    }
    b.write_var(var, acc);
}

/// X → Y → Z, blocks in program order [X, Y, Z].
fn program_xyz() -> Program {
    let mut b = ProgramBuilder::new("xyz");
    let (sx, sy, sz) = decls(&mut b);
    let yb = b.new_block("Y");
    let zb = b.new_block("Z");
    emit_body(&mut b, sx, 10);
    b.jump(yb);
    b.switch_to(yb);
    emit_body(&mut b, sy, 20);
    b.jump(zb);
    b.switch_to(zb);
    emit_body(&mut b, sz, 30);
    b.halt();
    b.finish().unwrap()
}

/// X → Z with Y deleted, blocks in program order [X, Z].
fn program_xz() -> Program {
    let mut b = ProgramBuilder::new("xz");
    let (sx, _sy, sz) = decls(&mut b);
    let zb = b.new_block("Z");
    emit_body(&mut b, sx, 10);
    b.jump(zb);
    b.switch_to(zb);
    emit_body(&mut b, sz, 30);
    b.halt();
    b.finish().unwrap()
}

/// Same CFG as [`program_xyz`] but blocks *declared* in order [X, Z, Y].
fn program_xzy() -> Program {
    let mut b = ProgramBuilder::new("xzy");
    let (sx, sy, sz) = decls(&mut b);
    let zb = b.new_block("Z");
    let yb = b.new_block("Y");
    emit_body(&mut b, sx, 10);
    b.jump(yb);
    b.switch_to(yb);
    emit_body(&mut b, sy, 20);
    b.jump(zb);
    b.switch_to(zb);
    emit_body(&mut b, sz, 30);
    b.halt();
    b.finish().unwrap()
}

fn annealing() -> CompilerOptions {
    CompilerOptions {
        placement: PlacementAlgorithm::Annealing { seed: 0xDECADE },
        threads: 1,
        ..CompilerOptions::default()
    }
}

fn compile(program: &Program) -> CompiledProgram {
    compile_with_cache(
        program,
        &MachineConfig::square(4),
        &annealing(),
        &BlockCache::in_memory(),
    )
    .unwrap()
}

/// The (node → tile) placement of block index `block`, from provenance.
fn placement_of(compiled: &CompiledProgram, block: u32) -> BTreeMap<u32, u32> {
    compiled
        .provenance
        .records
        .iter()
        .filter(|r| r.block == block)
        .map(|r| (r.node, r.tile))
        .collect()
}

fn assert_block_invariant(a: (&CompiledProgram, u32), b: (&CompiledProgram, u32), what: &str) {
    let ra: &BlockReport = &a.0.report.blocks[a.1 as usize];
    let rb: &BlockReport = &b.0.report.blocks[b.1 as usize];
    assert_eq!(ra, rb, "{what}: BlockReport (incl. placement log) changed");
    assert_eq!(
        placement_of(a.0, a.1),
        placement_of(b.0, b.1),
        "{what}: node→tile placement changed"
    );
}

#[test]
fn deleting_an_unrelated_block_leaves_placements_unchanged() {
    let full = compile(&program_xyz());
    let pruned = compile(&program_xz());
    assert_block_invariant((&full, 0), (&pruned, 0), "X after deleting Y");
    assert_block_invariant((&full, 2), (&pruned, 1), "Z after deleting Y");
}

#[test]
fn reordering_blocks_leaves_placements_unchanged() {
    let xyz = compile(&program_xyz());
    let xzy = compile(&program_xzy());
    assert_block_invariant((&xyz, 0), (&xzy, 0), "X after reorder");
    assert_block_invariant((&xyz, 2), (&xzy, 1), "Z after reorder");
    assert_block_invariant((&xyz, 1), (&xzy, 2), "Y after reorder");
}

#[test]
fn shared_blocks_hit_across_programs() {
    // Content addressing means program B's blocks, already compiled while
    // building program A, are cache hits even though B is a different program
    // with different block indices.
    let cache = BlockCache::in_memory();
    let config = MachineConfig::square(4);
    let options = annealing();
    compile_with_cache(&program_xyz(), &config, &options, &cache).unwrap();
    let pruned = compile_with_cache(&program_xz(), &config, &options, &cache).unwrap();
    assert_eq!(pruned.report.cache.misses, 0, "X and Z were already cached");
    assert_eq!(pruned.report.cache.hits, 2);
}

#!/usr/bin/env bash
# Tier-1 gate, fully offline: format, lint, build, test.
#
# The workspace has no external dependencies (see crates/testkit), so every
# step runs with --offline against an empty registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test"
cargo test --offline --workspace -q

echo "ci: all green"

#!/usr/bin/env bash
# Tier-1 gate, fully offline: format, lint, build, test.
#
# The workspace has no external dependencies (see crates/testkit), so every
# step runs with --offline against an empty registry.
#
# Modes:
#   ci.sh         default gate (fmt, clippy, build, test, bench smoke)
#   ci.sh bench   full benchmark run: all suites at full sample counts,
#                 writing BENCH_simulator.json / BENCH_paper_tables.json /
#                 BENCH_sim_scale.json to the repo root ($BENCH_DIR
#                 overrides).
set -euo pipefail
cd "$(dirname "$0")"

run_benches() {
  # The harness appends JSON lines; remove stale files so each run is a
  # clean snapshot comparable with bench_diff.
  local dir="${BENCH_DIR:-$PWD}"
  mkdir -p "$dir"
  rm -f "$dir"/BENCH_simulator.json "$dir"/BENCH_paper_tables.json \
    "$dir"/BENCH_sim_scale.json
  BENCH_DIR="$dir" cargo bench --offline -p raw-bench
}

if [[ "${1:-}" == "bench" ]]; then
  echo "==> cargo build --release (bench tooling)"
  cargo build --offline --release -p raw-bench
  echo "==> full benchmark suites"
  run_benches
  echo "ci: bench done (compare snapshots with: cargo run --release -p raw-bench --bin bench_diff -- OLD.json NEW.json)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo build --release --examples"
cargo build --offline --release --workspace --examples

echo "==> cargo test (serial compile pipeline, RAWCC_THREADS=1)"
RAWCC_THREADS=1 cargo test --offline --workspace -q

echo "==> cargo test (parallel compile pipeline, RAWCC_THREADS=8)"
# Same binaries, second scheduling regime: every golden snapshot and
# differential test must be bit-identical under an 8-worker block fan-out.
RAWCC_THREADS=8 cargo test --offline --workspace -q

echo "==> block-cache smoke (two identical compiles, second one 100% hits)"
cache_dir="$(mktemp -d)"
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  compile --tiles 16 --quick --cache-dir "$cache_dir/blocks" \
  > "$cache_dir/cold.txt"
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  compile --tiles 16 --quick --cache-dir "$cache_dir/blocks" \
  > "$cache_dir/warm.txt"
# Warm run: zero recompiles, and byte-identical asm per workload.
if grep -qv "cache_misses=0 " "$cache_dir/warm.txt"; then
  echo "ci: warm cache run recompiled a block:" >&2
  cat "$cache_dir/warm.txt" >&2
  exit 1
fi
cold_hashes="$(sed 's/.*\(asm_hash=0x[0-9a-f]*\)/\1/' "$cache_dir/cold.txt")"
warm_hashes="$(sed 's/.*\(asm_hash=0x[0-9a-f]*\)/\1/' "$cache_dir/warm.txt")"
if [[ "$cold_hashes" != "$warm_hashes" ]]; then
  echo "ci: warm cache changed the generated asm" >&2
  diff <(echo "$cold_hashes") <(echo "$warm_hashes") >&2 || true
  exit 1
fi
rm -rf "$cache_dir"

echo "==> bench smoke (reduced samples) + bench_diff self-check"
smoke_dir="$(mktemp -d)"
BENCH_DIR="$smoke_dir" BENCH_SAMPLES=3 BENCH_WARMUP=1 \
  cargo bench --offline -p raw-bench --bench simulator >/dev/null
# Self-comparison must always pass: guards the JSON format and the diff tool.
cargo run --offline --release -p raw-bench --bin bench_diff -- \
  "$smoke_dir/BENCH_simulator.json" "$smoke_dir/BENCH_simulator.json"
rm -rf "$smoke_dir"

echo "==> trace smoke (traced vs untraced cycles, report CLI, chrome JSON)"
trace_dir="$(mktemp -d)"
# --selfcheck makes raw-bench itself verify that tracing leaves the cycle
# count bit-identical; the run also exercises every report renderer.
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  trace --bench mxm --tiles 4 --quick --selfcheck \
  --chrome "$trace_dir/mxm.trace.json" >/dev/null
# The exported Chrome trace must parse as JSON with a non-empty traceEvents
# array (python is available everywhere this gate runs; the in-tree parser
# already validated it once before the file was written).
python3 - "$trace_dir/mxm.trace.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
assert any(e.get("ph") == "X" for e in events), "no duration events"
PY
rm -rf "$trace_dir"

echo "==> annotate smoke (per-line attribution, placement audit, provenance args)"
annotate_dir="$(mktemp -d)"
# The annotate command fails by itself if per-line attribution does not sum
# exactly to the active-window cycle accounting.
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  annotate --quick --chrome "$annotate_dir/mxm.annotate.json" \
  > "$annotate_dir/annotate.txt"
grep -q "cycles attributed ==" "$annotate_dir/annotate.txt"
grep -q "placement audit" "$annotate_dir/annotate.txt"
grep -q "top stall:" "$annotate_dir/annotate.txt"
# Duration slices must carry source-provenance args (line/col/op) that join
# the space-time trace back to the Mini-C source.
python3 - "$annotate_dir/mxm.annotate.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
tagged = [e for e in events if "line" in e.get("args", {})]
assert tagged, "no provenance-tagged slices"
for e in tagged:
    args = e["args"]
    assert args["line"] >= 1 and args["col"] >= 1, f"bad span in {e}"
    assert isinstance(args["op"], str) and args["op"], f"missing op in {e}"
PY
rm -rf "$annotate_dir"

echo "==> scenario smoke (faulty-tile compile, co-residency, stepper differentials)"
scenario_dir="$(mktemp -d)"
# The scenario subcommand fails by itself on any differential mismatch:
# masked tiles carrying code, stepper divergence (clean or chaos), traced vs
# untraced drift, or a co-resident program whose result differs from its
# solo run.
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  scenario --quick > "$scenario_dir/scenario.txt"
grep -q "scenario pointer-chase " "$scenario_dir/scenario.txt"
grep -q "^coresident " "$scenario_dir/scenario.txt"
grep -q "all checks passed" "$scenario_dir/scenario.txt"
# Masked compiles must be byte-identical across worker-thread counts: diff
# the per-scenario asm hashes between a serial and an 8-worker compile.
RAWCC_THREADS=1 cargo run --offline --release -p raw-bench --bin raw-bench -- \
  scenario --quick --bench gather > "$scenario_dir/t1.txt"
RAWCC_THREADS=8 cargo run --offline --release -p raw-bench --bin raw-bench -- \
  scenario --quick --bench gather > "$scenario_dir/t8.txt"
t1_hashes="$(grep -o 'asm_hash=0x[0-9a-f]*' "$scenario_dir/t1.txt")"
t8_hashes="$(grep -o 'asm_hash=0x[0-9a-f]*' "$scenario_dir/t8.txt")"
if [[ -z "$t1_hashes" || "$t1_hashes" != "$t8_hashes" ]]; then
  echo "ci: masked compile asm differs across RAWCC_THREADS=1 vs =8" >&2
  diff <(echo "$t1_hashes") <(echo "$t8_hashes") >&2 || true
  exit 1
fi
rm -rf "$scenario_dir"

echo "==> sim smoke (8x8 event-core differential, clean + chaos, both thread counts)"
# The sim subcommand's --selfcheck runs every sparse workload (plus a
# compiled jacobi) under all three steppers — tracked, reference, and the
# calendar-queue event core — clean and under a chaos sweep, and fails on
# any divergence in cycles, stats, or memory. The jacobi leg compiles
# through rawcc, so repeating under both worker counts also guards the
# event core against block-fan-out scheduling drift.
RAWCC_THREADS=1 cargo run --offline --release -p raw-bench --bin raw-bench -- \
  sim --tiles 64 --selfcheck --quick >/dev/null
RAWCC_THREADS=8 cargo run --offline --release -p raw-bench --bin raw-bench -- \
  sim --tiles 64 --selfcheck --quick >/dev/null

echo "==> differential: tracing with provenance stays bit-identical"
# The trace subcommand's --selfcheck (run above) already asserts traced ==
# untraced cycle counts with the full provenance plumbing compiled in; repeat
# here on a second workload so the gate covers a control-flow-heavy kernel.
cargo run --offline --release -p raw-bench --bin raw-bench -- \
  trace --bench life --tiles 4 --quick --selfcheck >/dev/null

echo "ci: all green"

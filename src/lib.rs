//! Umbrella crate for the Raw space-time-scheduling reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use a
//! single dependency. See `README.md` for the tour and `DESIGN.md` for the
//! system inventory.

pub use raw_benchmarks as benchmarks;
pub use raw_ir as ir;
pub use raw_lang as lang;
pub use raw_machine as machine;
pub use raw_trace as trace;
pub use rawcc as cc;
